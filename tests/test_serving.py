"""Online serving layer: queues, live steering, maintenance, failover.

The contracts under test:

* **admission/backpressure** — per-shard queues are bounded; ``"reject"``
  refuses immediately, ``"block"`` waits up to a timeout;
* **live steering** — jobs compile against the SIS hint version current at
  arrival, and the ticket records which version that was;
* **maintenance windows** — the scheduler drains a day's accumulated work
  through the batch pipeline's own stages and atomically publishes the
  next hint version, while new submissions keep flowing;
* **failover** — killing a shard requeues its backlog onto survivors via
  the router's exclusion set with zero job loss;
* **batch parity** — replaying a day's stream on the serial (inline)
  schedule reproduces batch ``run_day``'s ``DayReport.fingerprint()``
  byte for byte (and the threaded schedule agrees too).
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro import QOAdvisor, QOAdvisorServer, ServingConfig, ShardRouter, SimulationConfig
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.scope.jobs import JobInstance
from repro.scope.optimizer.rules.base import RuleFlip
from repro.serving import JobTicket, QueueClosed, QueueFull, ShardQueue
from repro.serving.stats import percentile
from repro.sis.hints import HintEntry


def _config(workers: int = 1, shards: int = 1, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards),
    )


def _ticket(seq: int, job_id: str = "j") -> JobTicket:
    job = JobInstance(job_id, "t", "n", "script", day=0)
    return JobTicket(seq=seq, job=job, day=0, shard=0)


# -- queue admission ----------------------------------------------------------


def test_queue_reject_policy_raises_when_full():
    queue = ShardQueue(capacity=2, admission="reject")
    queue.put(_ticket(1))
    queue.put(_ticket(2))
    assert queue.depth == 2 and queue.max_depth == 2
    with pytest.raises(QueueFull):
        queue.put(_ticket(3))
    # a consumer frees a slot and admission resumes
    assert queue.get(timeout=0).seq == 1
    queue.put(_ticket(3))
    assert [queue.get(timeout=0).seq for _ in range(2)] == [2, 3]


def test_queue_block_policy_times_out_and_unblocks():
    queue = ShardQueue(capacity=1, admission="block")
    queue.put(_ticket(1))
    with pytest.raises(QueueFull):
        queue.put(_ticket(2), timeout=0.01)
    consumed = []

    def consumer():
        consumed.append(queue.get(timeout=5.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    queue.put(_ticket(2), timeout=5.0)  # unblocks as the consumer pops
    thread.join()
    assert consumed[0].seq == 1 and queue.get(timeout=0).seq == 2


def test_queue_close_stops_admission_but_keeps_backlog_drainable():
    queue = ShardQueue(capacity=4)
    queue.put(_ticket(1))
    queue.put(_ticket(2))
    queue.close()
    with pytest.raises(QueueClosed):
        queue.put(_ticket(3))
    assert [t.seq for t in queue.drain()] == [1, 2]
    assert queue.get(timeout=0) is None  # closed and empty


def test_queue_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ShardQueue(capacity=0)
    with pytest.raises(ValueError):
        ShardQueue(capacity=1, admission="drop-newest")


# -- router exclusion ---------------------------------------------------------


def test_router_exclusion_reroutes_stably_and_avoids_failed_shards():
    router = ShardRouter(4)
    for index in range(100):
        template = f"tmpl-{index:04d}"
        primary = router.shard_for(template)
        rerouted = router.shard_for(template, exclude={1})
        assert rerouted != 1 and 0 <= rerouted < 4
        # pure function of (template, exclusion set)
        assert rerouted == ShardRouter(4).shard_for(template, exclude={1})
        # surviving shards keep their keyspace (and their warm caches):
        # only the failed shard's templates are rehashed
        if primary != 1:
            assert rerouted == primary
    with pytest.raises(ValueError):
        router.shard_for("tmpl-0000", exclude={0, 1, 2, 3})


# -- server backpressure ------------------------------------------------------


def test_server_backpressure_rejects_past_capacity():
    server = QOAdvisorServer(
        config=_config(shards=1),
        serving=ServingConfig(queue_capacity=3, admission="reject", workers_per_shard=1),
    )
    jobs = server.advisor.workload.jobs_for_day(0)
    assert len(jobs) > 3
    # not started: nothing consumes, so the 4th submission must bounce
    for job in jobs[:3]:
        server.submit(job)
    with pytest.raises(QueueFull):
        server.submit(jobs[3])
    stats = server.stats()
    assert stats.jobs_submitted == 3 and stats.jobs_in_flight == 3
    assert stats.shards[0].queue_depth == 3
    # start, drain, and the backlog clears
    server.start()
    server.drain(timeout=60.0)
    assert server.stats().jobs_completed + server.stats().jobs_failed == 3
    server.shutdown()


# -- live steering ------------------------------------------------------------


def test_jobs_steer_against_the_live_hint_version():
    server = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=0)
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    before = server.submit(jobs[0])
    assert before.done and before.hint_version == 0 and not before.steered
    # a hint published mid-stream steers every later arrival of the template
    rule = server.advisor.registry.by_name("LocalGlobalAggregation").rule_id
    server.sis.upload([HintEntry(jobs[0].template_id, RuleFlip(rule, True))], day=0)
    after = server.submit(jobs[0])
    assert after.done and after.hint_version == 1 and after.steered
    # the steered compile really applied the flip
    assert after.run.result.signature != before.run.result.signature
    stats = server.stats()
    assert stats.shards[0].steered == 1 and stats.hint_version == 1
    assert stats.shards[0].last_hint_version == 1
    assert stats.shards[0].hint_version_skew == 0
    server.shutdown()


# -- maintenance windows ------------------------------------------------------


def test_maintenance_window_runs_all_stages_and_counts():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=0)
    )
    report = server.stream_day(0)
    assert set(report.stage_timings) == {
        "production", "features", "recommend", "recompile",
        "flight", "validate", "hintgen",
    }
    assert len(report.production_runs) + len(report.failed_jobs) == len(
        server.advisor.workload.jobs_for_day(0)
    )
    assert server.scheduler.windows == 1
    assert server.scheduler.pending(0) == 0  # drained into the report
    assert server.advisor.reports[-1] is report
    server.shutdown()


def test_submissions_stay_admitted_while_a_window_runs():
    """Maintenance is not a barrier: jobs flow while the window executes."""
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=1)
    )
    # generate day 1 up front so the window does not race catalog growth
    day1_jobs = server.advisor.workload.jobs_for_day(1)
    admitted_during_window: list[JobTicket] = []

    def stream_next_day(day: int) -> None:
        if day == 0:
            for job in day1_jobs[:3]:
                admitted_during_window.append(server.submit(job))

    server.scheduler.on_window_start = stream_next_day
    server.start()
    server.submit_day(0)
    server.drain(timeout=60.0)
    server.run_maintenance(0)
    assert len(admitted_during_window) == 3  # no deadlock, no rejection
    server.drain(timeout=60.0)
    assert all(t.done for t in admitted_during_window)
    report = server.run_maintenance(1)
    assert len(report.production_runs) + len(report.failed_jobs) == 3
    server.shutdown()


# -- failover -----------------------------------------------------------------


def test_shard_failover_requeues_backlog_with_zero_loss():
    server = QOAdvisorServer(
        config=_config(shards=3), serving=ServingConfig(workers_per_shard=1)
    )
    tickets = server.submit_day(0)  # not started: queues hold the whole day
    depths = [shard.queue_depth for shard in server.stats().shards]
    victim = max(range(3), key=lambda i: depths[i])
    assert depths[victim] > 0
    requeued = server.fail_shard(victim)
    assert requeued == depths[victim]
    assert server.fail_shard(victim) == 0  # idempotent
    stats = server.stats()
    assert not stats.shards[victim].alive
    assert stats.shards[victim].queue_depth == 0
    assert stats.shards[victim].requeued == requeued
    # new submissions never land on the failed shard again
    rerouted = server.submit(server.advisor.workload.jobs_for_day(0)[0])
    assert rerouted.shard != victim
    assert victim in server.failed_shards
    server.start()
    server.drain(timeout=120.0)
    report = server.run_maintenance(0)
    # zero lost jobs: every submitted job id shows up in the day report
    reported = {run.job.job_id for run in report.production_runs} | set(
        report.failed_jobs
    )
    assert {t.job.job_id for t in tickets} <= reported
    final = server.stats()
    assert final.shards[victim].completed == 0 and final.shards[victim].failed == 0
    assert final.jobs_completed + final.jobs_failed == len(tickets) + 1
    server.shutdown()


def test_failing_the_last_shard_is_refused():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=1)
    )
    server.fail_shard(0)
    with pytest.raises(ValueError):
        server.fail_shard(1)
    server.shutdown()


# -- drain / shutdown ---------------------------------------------------------


def test_drain_requires_a_started_server():
    server = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=1)
    )
    server.submit(server.advisor.workload.jobs_for_day(0)[0])
    with pytest.raises(RuntimeError, match="not.*started"):
        server.drain(timeout=0.1)
    with pytest.raises(RuntimeError, match="not started"):
        server.run_maintenance(0)
    server.start()
    server.drain(timeout=60.0)
    server.shutdown()


def test_shutdown_is_graceful_and_terminal():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=2)
    )
    with server as running:
        running.submit_day(0)
    # the context exit drained before retiring the workers
    stats = server.stats()
    assert stats.jobs_in_flight == 0
    assert stats.jobs_completed + stats.jobs_failed == stats.jobs_submitted
    assert not server.started
    with pytest.raises(QueueClosed):
        server.submit(server.advisor.workload.jobs_for_day(1)[0])
    server.shutdown()  # idempotent


# -- health metric edge cases -------------------------------------------------


def test_percentiles_are_none_until_measured_not_fabricated_zeroes():
    # empty sample: no percentile exists (0.0 would mean "infinitely fast")
    assert percentile([], 50) is None and percentile([], 95) is None
    # singleton sample: the single observation at every rank, no IndexError
    assert percentile([0.25], 50) == 0.25 and percentile([0.25], 95) == 0.25
    assert percentile([0.25], 0) == 0.25 and percentile([0.25], 100) == 0.25
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=0)
    )
    stats = server.stats()  # zero jobs steered anywhere
    for shard in stats.shards:
        assert shard.compile_p50_s is None and shard.compile_p95_s is None
    assert "n/a" in stats.render()  # renders without crashing on None
    server.shutdown()


def test_idle_lane_skew_is_none_across_a_publication():
    """Regression: a lane that idles across a hint publication must not
    report skew as 0 (caught up), as the current version (maximally
    behind), or negative — it has no skew to report at all."""
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=0)
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    # keep one lane completely idle: submit only the other lane's templates
    busy_shard = server.router.shard_for_job(jobs[0])
    idle_shard = 1 - busy_shard
    for job in jobs:
        if server.router.shard_for_job(job) == busy_shard:
            server.submit(job)
    # a publication lands while the idle lane has never compiled anything
    rule = server.advisor.registry.by_name("LocalGlobalAggregation").rule_id
    server.sis.upload([HintEntry(jobs[0].template_id, RuleFlip(rule, True))], day=0)
    stats = server.stats()
    assert stats.hint_version == 1
    assert stats.shards[idle_shard].last_hint_version is None
    assert stats.shards[idle_shard].hint_version_skew is None
    assert stats.shards[busy_shard].hint_version_skew == 1  # really behind
    # a rollback must not drive the busy lane's skew negative
    server.sis.rollback()
    assert server.stats().shards[busy_shard].hint_version_skew == 0
    stats.render()  # the idle lane renders as "v-", no crash
    server.shutdown()


# -- SLO-driven admission -----------------------------------------------------


def _slo_serving(**overrides) -> ServingConfig:
    defaults = dict(
        workers_per_shard=0, slo_p95_ms=1e-9, slo_window=8, slo_min_samples=1
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


def test_degraded_lane_defers_low_priority_until_drain():
    server = QOAdvisorServer(config=_config(shards=1), serving=_slo_serving())
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    first = server.submit(jobs[0])  # high priority: served, trips the SLO
    assert first.done
    low = dataclasses.replace(jobs[1], metadata={"priority": "low"})
    parked = server.submit(low)
    assert not parked.done and parked.deferred == 1
    stats = server.stats()
    assert stats.shards[0].deferred == 1 and stats.shards[0].standby_depth == 1
    assert stats.jobs_deferred == 1 and stats.jobs_in_flight == 1
    # high-priority traffic keeps flowing past the parked ticket
    assert server.submit(jobs[2]).done
    # the drain barrier flushes standby work; nothing is ever lost
    server.drain(timeout=60.0)
    assert parked.done and not parked.failed
    report = server.run_maintenance(0)
    assert low.job_id in {run.job.job_id for run in report.production_runs}
    server.shutdown()


def test_degraded_lane_sheds_low_priority_by_policy():
    server = QOAdvisorServer(
        config=_config(shards=1), serving=_slo_serving(slo_policy="shed")
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    server.submit(jobs[0])
    low = dataclasses.replace(jobs[1], metadata={"priority": "low"})
    dropped = server.submit(low)
    assert dropped.shed and dropped.failed and dropped.done
    stats = server.stats()
    assert stats.shards[0].shed == 1 and stats.jobs_shed == 1
    assert stats.jobs_in_flight == 0
    server.drain(timeout=60.0)
    # the shed job still appears in the day's accounting, as a failure
    report = server.run_maintenance(0)
    assert low.job_id in report.failed_jobs
    server.shutdown()


def test_healthy_lane_admits_low_priority_and_slo_off_by_default():
    # below slo_min_samples the lane is never declared degraded
    server = QOAdvisorServer(
        config=_config(shards=1), serving=_slo_serving(slo_min_samples=3)
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    low = dataclasses.replace(jobs[0], metadata={"priority": "low"})
    assert server.submit(low).done  # 0 samples < 3: admitted normally
    server.shutdown()
    # and with no SLO configured, priority never matters
    plain = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=0)
    )
    plain.start()
    low2 = dataclasses.replace(jobs[1], metadata={"priority": "low"})
    assert plain.submit(low2).done
    plain.shutdown()
    with pytest.raises(ValueError, match="slo_policy"):
        QOAdvisorServer(
            config=_config(shards=1),
            serving=ServingConfig(slo_policy="drop-oldest"),
        )


# -- batch parity -------------------------------------------------------------


def _no_mqo(stats):
    """Zero the one honestly schedule-shaped counter before comparing.

    The batch day pre-explores fragments at day open; the serving lanes
    compile everything before the maintenance window's pre-explore pass
    runs (plan-resident units are skipped counter-free), so
    ``mqo_preexplored`` differs by schedule while every demand-accounting
    counter — fragment hits/misses/inserts included — stays byte-equal.
    """
    return dataclasses.replace(stats, mqo_preexplored=0)


def test_serial_replay_matches_batch_run_day_single_shard():
    batch = QOAdvisor(_config(shards=1))
    baseline = batch.run_day(0)
    server = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=0)
    )
    report = server.stream_day(0)
    assert report.fingerprint() == baseline.fingerprint()
    assert _no_mqo(report.cache_stats) == _no_mqo(baseline.cache_stats)
    assert {
        shard: _no_mqo(stats) for shard, stats in report.shard_cache_stats.items()
    } == {
        shard: _no_mqo(stats) for shard, stats in baseline.shard_cache_stats.items()
    }
    server.shutdown()
    batch.close()


def test_threaded_sharded_replay_matches_batch():
    batch = QOAdvisor(_config(workers=1, shards=1))
    baseline = batch.run_day(0)
    server = QOAdvisorServer(
        config=_config(shards=2),
        serving=ServingConfig(workers_per_shard=2),
    )
    report = server.stream_day(0)
    assert report.fingerprint() == baseline.fingerprint()
    assert _no_mqo(report.cache_stats) == _no_mqo(baseline.cache_stats)
    server.shutdown()
    batch.close()


def test_full_deployment_replay_matches_batch_simulate():
    """Bootstrap + staged rollout + hint publication, batch vs. served.

    Seed 555 publishes a hint file on the first learned day, so this
    parity run covers the whole loop: the publication lands through a
    maintenance window, and the next day's arrivals steer against it.
    """
    batch = QOAdvisor(_config(seed=555))
    batch.pipeline.bootstrap_validation_model(start_day=0, days=4, flights_per_day=8)
    batch_reports = batch.simulate(start_day=4, days=3, learned_after=1)

    published = []
    server = QOAdvisorServer(
        config=_config(shards=2, seed=555),
        serving=ServingConfig(workers_per_shard=0),
        on_publish=published.append,
    )
    server.advisor.pipeline.bootstrap_validation_model(
        start_day=0, days=4, flights_per_day=8
    )
    served_reports = server.serve_days(start_day=4, days=3, learned_after=1)

    assert [r.fingerprint() for r in served_reports] == [
        r.fingerprint() for r in batch_reports
    ]
    assert [r.hint_version for r in served_reports] == [
        r.hint_version for r in batch_reports
    ]
    # the parity run really exercised a publication...
    assert any(r.hint_version is not None for r in served_reports)
    assert server.scheduler.publications == sum(
        1 for r in served_reports if r.hint_version is not None
    )
    assert [r.day for r in published] == [
        r.day for r in served_reports if r.hint_version is not None
    ]
    assert server.sis.current_version == batch.sis.current_version
    # ...and later arrivals steered against the published version live
    assert server.stats().steer_rate > 0.0
    server.shutdown()
    batch.close()
