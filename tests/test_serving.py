"""Online serving layer: queues, live steering, maintenance, failover.

The contracts under test:

* **admission/backpressure** — per-shard queues are bounded; ``"reject"``
  refuses immediately, ``"block"`` waits up to a timeout;
* **live steering** — jobs compile against the SIS hint version current at
  arrival, and the ticket records which version that was;
* **maintenance windows** — the scheduler drains a day's accumulated work
  through the batch pipeline's own stages and atomically publishes the
  next hint version, while new submissions keep flowing;
* **failover** — killing a shard requeues its backlog onto survivors via
  the router's exclusion set with zero job loss;
* **batch parity** — replaying a day's stream on the serial (inline)
  schedule reproduces batch ``run_day``'s ``DayReport.fingerprint()``
  byte for byte (and the threaded schedule agrees too).
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro import QOAdvisor, QOAdvisorServer, ServingConfig, ShardRouter, SimulationConfig
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.scope.jobs import JobInstance
from repro.scope.optimizer.rules.base import RuleFlip
from repro.serving import JobTicket, QueueClosed, QueueFull, ShardQueue
from repro.sis.hints import HintEntry


def _config(workers: int = 1, shards: int = 1, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards),
    )


def _ticket(seq: int, job_id: str = "j") -> JobTicket:
    job = JobInstance(job_id, "t", "n", "script", day=0)
    return JobTicket(seq=seq, job=job, day=0, shard=0)


# -- queue admission ----------------------------------------------------------


def test_queue_reject_policy_raises_when_full():
    queue = ShardQueue(capacity=2, admission="reject")
    queue.put(_ticket(1))
    queue.put(_ticket(2))
    assert queue.depth == 2 and queue.max_depth == 2
    with pytest.raises(QueueFull):
        queue.put(_ticket(3))
    # a consumer frees a slot and admission resumes
    assert queue.get(timeout=0).seq == 1
    queue.put(_ticket(3))
    assert [queue.get(timeout=0).seq for _ in range(2)] == [2, 3]


def test_queue_block_policy_times_out_and_unblocks():
    queue = ShardQueue(capacity=1, admission="block")
    queue.put(_ticket(1))
    with pytest.raises(QueueFull):
        queue.put(_ticket(2), timeout=0.01)
    consumed = []

    def consumer():
        consumed.append(queue.get(timeout=5.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    queue.put(_ticket(2), timeout=5.0)  # unblocks as the consumer pops
    thread.join()
    assert consumed[0].seq == 1 and queue.get(timeout=0).seq == 2


def test_queue_close_stops_admission_but_keeps_backlog_drainable():
    queue = ShardQueue(capacity=4)
    queue.put(_ticket(1))
    queue.put(_ticket(2))
    queue.close()
    with pytest.raises(QueueClosed):
        queue.put(_ticket(3))
    assert [t.seq for t in queue.drain()] == [1, 2]
    assert queue.get(timeout=0) is None  # closed and empty


def test_queue_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ShardQueue(capacity=0)
    with pytest.raises(ValueError):
        ShardQueue(capacity=1, admission="drop-newest")


# -- router exclusion ---------------------------------------------------------


def test_router_exclusion_reroutes_stably_and_avoids_failed_shards():
    router = ShardRouter(4)
    for index in range(100):
        template = f"tmpl-{index:04d}"
        primary = router.shard_for(template)
        rerouted = router.shard_for(template, exclude={1})
        assert rerouted != 1 and 0 <= rerouted < 4
        # pure function of (template, exclusion set)
        assert rerouted == ShardRouter(4).shard_for(template, exclude={1})
        # surviving shards keep their keyspace (and their warm caches):
        # only the failed shard's templates are rehashed
        if primary != 1:
            assert rerouted == primary
    with pytest.raises(ValueError):
        router.shard_for("tmpl-0000", exclude={0, 1, 2, 3})


# -- server backpressure ------------------------------------------------------


def test_server_backpressure_rejects_past_capacity():
    server = QOAdvisorServer(
        config=_config(shards=1),
        serving=ServingConfig(queue_capacity=3, admission="reject", workers_per_shard=1),
    )
    jobs = server.advisor.workload.jobs_for_day(0)
    assert len(jobs) > 3
    # not started: nothing consumes, so the 4th submission must bounce
    for job in jobs[:3]:
        server.submit(job)
    with pytest.raises(QueueFull):
        server.submit(jobs[3])
    stats = server.stats()
    assert stats.jobs_submitted == 3 and stats.jobs_in_flight == 3
    assert stats.shards[0].queue_depth == 3
    # start, drain, and the backlog clears
    server.start()
    server.drain(timeout=60.0)
    assert server.stats().jobs_completed + server.stats().jobs_failed == 3
    server.shutdown()


# -- live steering ------------------------------------------------------------


def test_jobs_steer_against_the_live_hint_version():
    server = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=0)
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    before = server.submit(jobs[0])
    assert before.done and before.hint_version == 0 and not before.steered
    # a hint published mid-stream steers every later arrival of the template
    rule = server.advisor.registry.by_name("LocalGlobalAggregation").rule_id
    server.sis.upload([HintEntry(jobs[0].template_id, RuleFlip(rule, True))], day=0)
    after = server.submit(jobs[0])
    assert after.done and after.hint_version == 1 and after.steered
    # the steered compile really applied the flip
    assert after.run.result.signature != before.run.result.signature
    stats = server.stats()
    assert stats.shards[0].steered == 1 and stats.hint_version == 1
    assert stats.shards[0].last_hint_version == 1
    assert stats.shards[0].hint_version_skew == 0
    server.shutdown()


# -- maintenance windows ------------------------------------------------------


def test_maintenance_window_runs_all_stages_and_counts():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=0)
    )
    report = server.stream_day(0)
    assert set(report.stage_timings) == {
        "production", "features", "recommend", "recompile",
        "flight", "validate", "hintgen",
    }
    assert len(report.production_runs) + len(report.failed_jobs) == len(
        server.advisor.workload.jobs_for_day(0)
    )
    assert server.scheduler.windows == 1
    assert server.scheduler.pending(0) == 0  # drained into the report
    assert server.advisor.reports[-1] is report
    server.shutdown()


def test_submissions_stay_admitted_while_a_window_runs():
    """Maintenance is not a barrier: jobs flow while the window executes."""
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=1)
    )
    # generate day 1 up front so the window does not race catalog growth
    day1_jobs = server.advisor.workload.jobs_for_day(1)
    admitted_during_window: list[JobTicket] = []

    def stream_next_day(day: int) -> None:
        if day == 0:
            for job in day1_jobs[:3]:
                admitted_during_window.append(server.submit(job))

    server.scheduler.on_window_start = stream_next_day
    server.start()
    server.submit_day(0)
    server.drain(timeout=60.0)
    server.run_maintenance(0)
    assert len(admitted_during_window) == 3  # no deadlock, no rejection
    server.drain(timeout=60.0)
    assert all(t.done for t in admitted_during_window)
    report = server.run_maintenance(1)
    assert len(report.production_runs) + len(report.failed_jobs) == 3
    server.shutdown()


# -- failover -----------------------------------------------------------------


def test_shard_failover_requeues_backlog_with_zero_loss():
    server = QOAdvisorServer(
        config=_config(shards=3), serving=ServingConfig(workers_per_shard=1)
    )
    tickets = server.submit_day(0)  # not started: queues hold the whole day
    depths = [shard.queue_depth for shard in server.stats().shards]
    victim = max(range(3), key=lambda i: depths[i])
    assert depths[victim] > 0
    requeued = server.fail_shard(victim)
    assert requeued == depths[victim]
    assert server.fail_shard(victim) == 0  # idempotent
    stats = server.stats()
    assert not stats.shards[victim].alive
    assert stats.shards[victim].queue_depth == 0
    assert stats.shards[victim].requeued == requeued
    # new submissions never land on the failed shard again
    rerouted = server.submit(server.advisor.workload.jobs_for_day(0)[0])
    assert rerouted.shard != victim
    assert victim in server.failed_shards
    server.start()
    server.drain(timeout=120.0)
    report = server.run_maintenance(0)
    # zero lost jobs: every submitted job id shows up in the day report
    reported = {run.job.job_id for run in report.production_runs} | set(
        report.failed_jobs
    )
    assert {t.job.job_id for t in tickets} <= reported
    final = server.stats()
    assert final.shards[victim].completed == 0 and final.shards[victim].failed == 0
    assert final.jobs_completed + final.jobs_failed == len(tickets) + 1
    server.shutdown()


def test_failing_the_last_shard_is_refused():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=1)
    )
    server.fail_shard(0)
    with pytest.raises(ValueError):
        server.fail_shard(1)
    server.shutdown()


# -- drain / shutdown ---------------------------------------------------------


def test_drain_requires_a_started_server():
    server = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=1)
    )
    server.submit(server.advisor.workload.jobs_for_day(0)[0])
    with pytest.raises(RuntimeError, match="not.*started"):
        server.drain(timeout=0.1)
    with pytest.raises(RuntimeError, match="not started"):
        server.run_maintenance(0)
    server.start()
    server.drain(timeout=60.0)
    server.shutdown()


def test_shutdown_is_graceful_and_terminal():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=2)
    )
    with server as running:
        running.submit_day(0)
    # the context exit drained before retiring the workers
    stats = server.stats()
    assert stats.jobs_in_flight == 0
    assert stats.jobs_completed + stats.jobs_failed == stats.jobs_submitted
    assert not server.started
    with pytest.raises(QueueClosed):
        server.submit(server.advisor.workload.jobs_for_day(1)[0])
    server.shutdown()  # idempotent


# -- batch parity -------------------------------------------------------------


def test_serial_replay_matches_batch_run_day_single_shard():
    batch = QOAdvisor(_config(shards=1))
    baseline = batch.run_day(0)
    server = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=0)
    )
    report = server.stream_day(0)
    assert report.fingerprint() == baseline.fingerprint()
    assert report.cache_stats == baseline.cache_stats
    assert report.shard_cache_stats == baseline.shard_cache_stats
    server.shutdown()
    batch.close()


def test_threaded_sharded_replay_matches_batch():
    batch = QOAdvisor(_config(workers=1, shards=1))
    baseline = batch.run_day(0)
    server = QOAdvisorServer(
        config=_config(shards=2),
        serving=ServingConfig(workers_per_shard=2),
    )
    report = server.stream_day(0)
    assert report.fingerprint() == baseline.fingerprint()
    assert report.cache_stats == baseline.cache_stats
    server.shutdown()
    batch.close()


def test_full_deployment_replay_matches_batch_simulate():
    """Bootstrap + staged rollout + hint publication, batch vs. served.

    Seed 555 publishes a hint file on the first learned day, so this
    parity run covers the whole loop: the publication lands through a
    maintenance window, and the next day's arrivals steer against it.
    """
    batch = QOAdvisor(_config(seed=555))
    batch.pipeline.bootstrap_validation_model(start_day=0, days=4, flights_per_day=8)
    batch_reports = batch.simulate(start_day=4, days=3, learned_after=1)

    published = []
    server = QOAdvisorServer(
        config=_config(shards=2, seed=555),
        serving=ServingConfig(workers_per_shard=0),
        on_publish=published.append,
    )
    server.advisor.pipeline.bootstrap_validation_model(
        start_day=0, days=4, flights_per_day=8
    )
    served_reports = server.serve_days(start_day=4, days=3, learned_after=1)

    assert [r.fingerprint() for r in served_reports] == [
        r.fingerprint() for r in batch_reports
    ]
    assert [r.hint_version for r in served_reports] == [
        r.hint_version for r in batch_reports
    ]
    # the parity run really exercised a publication...
    assert any(r.hint_version is not None for r in served_reports)
    assert server.scheduler.publications == sum(
        1 for r in served_reports if r.hint_version is not None
    )
    assert [r.day for r in published] == [
        r.day for r in served_reports if r.hint_version is not None
    ]
    assert server.sis.current_version == batch.sis.current_version
    # ...and later arrivals steered against the published version live
    assert server.stats().steer_rate > 0.0
    server.shutdown()
    batch.close()
