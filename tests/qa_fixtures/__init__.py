"""Seeded-violation fixtures for the repro.qa analyzers.

Each ``det_*`` / ``lock_*`` / ``sup_*`` module plants exactly the
violations its test expects (rule ID and line number asserted exactly).
These modules are linted as *text*, never imported by the test suite.
"""
