"""Fixture: guarded attribute accessed outside its lock (QA-LOCK-UNGUARDED)."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # clean: __init__ is pre-publication

    def bump(self) -> None:
        with self._lock:
            self._count += 1  # establishes _count as guarded

    def peek(self) -> int:
        return self._count  # line 16: flagged — read outside self._lock

    def peek_locked(self) -> int:
        return self._count  # clean: *_locked caller-holds-lock convention
