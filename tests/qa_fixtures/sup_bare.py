"""Fixture: suppression without a reason (QA-SUP-BARE) suppresses nothing."""


def route(template_id: str, shards: list) -> object:
    return shards[hash(template_id) % len(shards)]  # qa: hash-ok
