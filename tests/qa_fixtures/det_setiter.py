"""Fixture: unsorted set iteration into ordered accumulation (QA-DET-SETITER)."""


def collect(ids: set) -> list:
    out = []
    for rule_id in ids:  # line 6: flagged — order leaks into the list
        out.append(rule_id)
    return out


def folded(ids: set) -> int:
    return sum(ids)  # clean: order-insensitive consumer
