"""Fixture: id() feeding ordering (QA-DET-ID)."""


def order(nodes: list) -> list:
    return sorted(nodes, key=lambda node: id(node))  # line 5: flagged


def memo(nodes: list) -> dict:
    return {id(node): node for node in nodes}  # clean: identity-dict key
