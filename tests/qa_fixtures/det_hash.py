"""Fixture: builtin hash() feeding keys/ordering (QA-DET-HASH)."""


def route(template_id: str, shards: list) -> object:
    return shards[hash(template_id) % len(shards)]  # line 5: flagged


def safe(template_id: str) -> int:
    from repro.rng import stable_hash

    return stable_hash(template_id)  # clean: the blessed helper
