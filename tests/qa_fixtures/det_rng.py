"""Fixture: RNG construction outside repro.rng (QA-DET-RNG)."""

import random

import numpy as np


def sample() -> float:
    rng = np.random.default_rng(7)  # line 9: flagged
    return rng.random() + random.random()  # line 10: flagged
