"""Fixture: wall-clock read outside the telemetry allowlist (QA-DET-TIME)."""

import time


def stamp() -> float:
    return time.time()  # line 7: flagged


def allowed() -> float:
    return time.perf_counter()  # qa: wallclock-ok fixture demonstrating suppression
