"""Fixture: unknown suppression tag (QA-SUP-UNKNOWN)."""


def stamp(value: int) -> int:
    return value  # qa: totally-fine because I said so
