"""Workload-view (Table 1) aggregation tests."""

import pytest

from repro.scope.telemetry.view import WorkloadView, build_view_row


@pytest.fixture(scope="module")
def row(engine, join_agg_job):
    result = engine.compile_job(join_agg_job, use_hints=False)
    metrics = engine.execute(result, ("view", 0))
    return build_view_row(join_agg_job, result, metrics), result, metrics


def test_view_row_job_level_features(row):
    view_row, result, metrics = row
    assert view_row.job_id == "j-agg"
    assert view_row.estimated_cost == result.est_cost
    assert view_row.latency_s == metrics.latency_s
    assert view_row.pnhours == metrics.pnhours
    assert view_row.vertices == metrics.vertices
    assert view_row.rule_signature == result.signature.rule_ids


def test_view_row_query_level_aggregation(row):
    view_row, result, _ = row
    # the job has two OUTPUT trees: sums aggregate across them (Table 1)
    assert view_row.query_count == 2
    roots = result.plan.children
    assert view_row.estimated_cardinality == pytest.approx(
        sum(r.est_rows for r in roots)
    )
    assert view_row.row_count == pytest.approx(sum(r.true_rows for r in roots))
    assert view_row.avg_row_length == pytest.approx(
        sum(float(r.op.schema.row_width) for r in roots) / 2
    )


def test_workload_view_grouping(row):
    view_row, _, _ = row
    view = WorkloadView(day=0)
    view.add(view_row)
    view.add(view_row)
    assert len(view) == 2
    assert set(view.by_template()) == {"t-agg"}
    assert len(view.by_template()["t-agg"]) == 2
