"""Lexer, parser and binder tests."""

import pytest

from repro.errors import BindError, LexerError, ParseError
from repro.scope.language import ast
from repro.scope.language.binder import Binder
from repro.scope.language.lexer import TokenKind, tokenize
from repro.scope.language.parser import parse_script
from repro.scope.types import DataType

from tests.conftest import JOIN_AGG_SCRIPT


# -- lexer -------------------------------------------------------------------


def test_tokenize_keywords_case_insensitive():
    tokens = tokenize("select Select SELECT")
    assert all(t.kind == TokenKind.KEYWORD and t.text == "SELECT" for t in tokens[:-1])


def test_tokenize_numbers_and_strings():
    tokens = tokenize('42 3.14 "hello world"')
    assert tokens[0].text == "42"
    assert tokens[1].text == "3.14"
    assert tokens[2].kind == TokenKind.STRING
    assert tokens[2].text == "hello world"


def test_tokenize_two_char_symbols():
    kinds = [t.text for t in tokenize("== != <= >= < >")[:-1]]
    assert kinds == ["==", "!=", "<=", ">=", "<", ">"]


def test_tokenize_comments_skipped():
    tokens = tokenize("a // comment to end\nb")
    assert [t.text for t in tokens[:-1]] == ["a", "b"]


def test_tokenize_tracks_positions():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_tokenize_rejects_bad_char():
    with pytest.raises(LexerError):
        tokenize("a ? b")


def test_tokenize_unterminated_string():
    with pytest.raises(LexerError):
        tokenize('"oops')


def test_string_escapes():
    tokens = tokenize(r'"a\"b"')
    assert tokens[0].text == 'a"b'


# -- parser -------------------------------------------------------------------


def test_parse_full_script_roundtrips_statements():
    script = parse_script(JOIN_AGG_SCRIPT)
    assert len(script.statements) == 6
    assert len(script.outputs) == 2


def test_parse_extract_columns():
    script = parse_script('r = EXTRACT a:int, b:string FROM "/p.ss";\nOUTPUT r TO "/o";')
    extract = script.statements[0]
    assert isinstance(extract, ast.ExtractStatement)
    assert [c.name for c in extract.columns] == ["a", "b"]
    assert extract.columns[1].dtype == DataType.STRING


def test_parse_expression_precedence():
    script = parse_script(
        'r = EXTRACT a:int FROM "/p";\ns = SELECT a FROM r WHERE a + 1 * 2 == 3 AND a < 5;\nOUTPUT s TO "/o";'
    )
    where = script.statements[1].query.where
    assert isinstance(where, ast.BinaryOp) and where.op == "AND"
    left = where.left
    assert left.op == "==" and left.left.op == "+"
    assert left.left.right.op == "*"  # * binds tighter than +


def test_parse_group_by_having_order_by():
    script = parse_script(
        'r = EXTRACT a:int, v:double FROM "/p";\n'
        "s = SELECT a, SUM(v) AS t FROM r GROUP BY a HAVING SUM(v) > 10 ORDER BY t DESC;\n"
        'OUTPUT s TO "/o";'
    )
    query = script.statements[1].query
    assert query.group_by and query.having is not None
    assert query.order_by[0].ascending is False


def test_parse_union_all_chain():
    script = parse_script(
        'r = EXTRACT a:int FROM "/p";\n'
        "s = SELECT a FROM r UNION ALL SELECT a FROM r;\n"
        'OUTPUT s TO "/o";'
    )
    assert script.statements[1].query.union_all is not None


def test_parse_count_star_and_distinct():
    script = parse_script(
        'r = EXTRACT a:int FROM "/p";\n'
        "s = SELECT a, COUNT(*) AS c, COUNT(DISTINCT a) AS d FROM r GROUP BY a;\n"
        'OUTPUT s TO "/o";'
    )
    items = script.statements[1].query.items
    assert isinstance(items[1].expr.args[0], ast.Star)
    assert items[2].expr.distinct


def test_parse_errors_are_descriptive():
    with pytest.raises(ParseError):
        parse_script("OUTPUT TO x;")
    with pytest.raises(ParseError):
        parse_script('r = SELECT FROM t;\nOUTPUT r TO "/o";')
    with pytest.raises(ParseError):
        parse_script("")


# -- binder -------------------------------------------------------------------


def test_binder_resolves_and_normalizes(small_catalog):
    bound = Binder(small_catalog).bind(parse_script(JOIN_AGG_SCRIPT))
    assert set(bound.rowset_schemas) == {"raw", "filtered", "joined", "agg"}
    # every column ref in the bound tree carries a qualifier
    query = bound.script.statements[1].query
    for item in query.items:
        assert isinstance(item.expr, ast.ColumnRef)
        assert item.expr.qualifier is not None
        assert item.alias is not None


def test_binder_rejects_unknown_table(small_catalog):
    with pytest.raises(BindError):
        Binder(small_catalog).bind(
            parse_script('s = SELECT x FROM ghost;\nOUTPUT s TO "/o";')
        )


def test_binder_rejects_unknown_column(small_catalog):
    with pytest.raises(BindError):
        Binder(small_catalog).bind(
            parse_script('s = SELECT nope FROM users;\nOUTPUT s TO "/o";')
        )


def test_binder_rejects_ambiguous_column(small_catalog):
    script = (
        "s = SELECT uid FROM users AS a JOIN events AS b ON a.uid == b.uid;\n"
        'OUTPUT s TO "/o";'
    )
    with pytest.raises(BindError, match="ambiguous"):
        Binder(small_catalog).bind(parse_script(script))


def test_binder_rejects_type_errors(small_catalog):
    with pytest.raises(BindError):
        Binder(small_catalog).bind(
            parse_script('s = SELECT uid FROM users WHERE region + 1;\nOUTPUT s TO "/o";')
        )


def test_binder_rejects_non_aggregated_item(small_catalog):
    script = (
        "s = SELECT age, COUNT(*) AS c FROM users GROUP BY region;\n"
        'OUTPUT s TO "/o";'
    )
    with pytest.raises(BindError):
        Binder(small_catalog).bind(parse_script(script))


def test_binder_rejects_extract_type_mismatch(small_catalog):
    script = 'r = EXTRACT uid:int FROM "/shares/data/users.ss";\nOUTPUT r TO "/o";'
    with pytest.raises(BindError):
        Binder(small_catalog).bind(parse_script(script))


def test_binder_requires_output(small_catalog):
    with pytest.raises(BindError):
        Binder(small_catalog).bind(parse_script("s = SELECT uid FROM users;"))


def test_binder_expands_star(small_catalog):
    bound = Binder(small_catalog).bind(
        parse_script('s = SELECT * FROM users;\nOUTPUT s TO "/o";')
    )
    assert bound.rowset_schemas["s"].names == ("uid", "age", "region")


def test_binder_union_type_check(small_catalog):
    script = (
        "s = SELECT uid FROM users UNION ALL SELECT region FROM users;\n"
        'OUTPUT s TO "/o";'
    )
    # uid is long, region is int: both numeric but different types
    with pytest.raises(BindError):
        Binder(small_catalog).bind(parse_script(script))


# -- ast helpers ---------------------------------------------------------------


def test_split_and_make_conjunction_roundtrip():
    a = ast.ColumnRef("a")
    pred = ast.BinaryOp(
        "AND",
        ast.BinaryOp("==", a, ast.Literal(1, DataType.LONG)),
        ast.BinaryOp("AND", ast.ColumnRef("b"), ast.ColumnRef("c")),
    )
    conjuncts = ast.split_conjuncts(pred)
    assert len(conjuncts) == 3
    rebuilt = ast.make_conjunction(conjuncts)
    assert ast.split_conjuncts(rebuilt) == conjuncts


def test_columns_in_traverses_everything():
    expr = ast.FuncCall(
        "SUM", (ast.BinaryOp("+", ast.ColumnRef("x"), ast.ColumnRef("y")),)
    )
    assert {c.name for c in ast.columns_in(expr)} == {"x", "y"}


def test_contains_aggregate():
    assert ast.contains_aggregate(ast.FuncCall("COUNT", (ast.Star(),)))
    assert not ast.contains_aggregate(ast.ColumnRef("a"))
