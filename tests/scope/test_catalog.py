import pytest

from repro.errors import CatalogError
from repro.scope.catalog import Catalog, ColumnStats, TableDef
from repro.scope.types import Column, DataType, Schema


def _table(name="t", rows=1000):
    return TableDef(name, Schema([Column("a", DataType.INT)]), rows)


def test_add_and_lookup():
    catalog = Catalog()
    catalog.add_table(_table())
    assert catalog.table("t").row_count == 1000
    assert "t" in catalog
    assert len(catalog) == 1


def test_duplicate_table_rejected():
    catalog = Catalog()
    catalog.add_table(_table())
    with pytest.raises(CatalogError):
        catalog.add_table(_table())


def test_replace_table_updates():
    catalog = Catalog()
    catalog.add_table(_table(rows=10))
    catalog.replace_table(_table(rows=99))
    assert catalog.table("t").row_count == 99


def test_unknown_table_raises():
    with pytest.raises(CatalogError):
        Catalog().table("nope")


def test_default_path_derived_from_name():
    assert _table("events").path == "/shares/data/events.ss"


def test_stats_for_unknown_column_synthesized():
    table = _table()
    stats = table.stats_for("a")
    assert stats.ndv >= 1


def test_stats_validation():
    with pytest.raises(CatalogError):
        ColumnStats(0, 10, 0)
    with pytest.raises(CatalogError):
        ColumnStats(10, 0, 5)
    with pytest.raises(CatalogError):
        ColumnStats(0, 10, 5, null_fraction=1.5)


def test_stats_must_reference_existing_columns():
    with pytest.raises(CatalogError):
        TableDef(
            "t",
            Schema([Column("a", DataType.INT)]),
            10,
            {"ghost": ColumnStats(0, 1, 1)},
        )


def test_estimated_row_count_is_stale_but_deterministic():
    catalog = Catalog(stats_seed=5, stats_staleness_sigma=0.2)
    catalog.add_table(_table(rows=100_000))
    first = catalog.estimated_row_count("t")
    second = catalog.estimated_row_count("t")
    assert first == second
    assert first != 100_000  # staleness perturbs the estimate


def test_estimated_row_count_exact_without_staleness():
    catalog = Catalog()
    catalog.add_table(_table(rows=123))
    assert catalog.estimated_row_count("t") == 123.0
