import pytest

from repro.errors import CatalogError
from repro.scope.types import Column, DataType, Schema


def test_datatype_parse_roundtrip():
    for dtype in DataType:
        assert DataType.parse(dtype.value) is dtype


def test_datatype_parse_unknown_raises():
    with pytest.raises(CatalogError):
        DataType.parse("varchar")


def test_datatype_numeric_classification():
    assert DataType.INT.is_numeric
    assert DataType.DOUBLE.is_numeric
    assert not DataType.STRING.is_numeric
    assert not DataType.BOOL.is_numeric


def test_schema_lookup_and_index():
    schema = Schema([Column("a", DataType.INT), Column("b", DataType.STRING)])
    assert schema.column("b").dtype == DataType.STRING
    assert schema.index_of("a") == 0
    assert "a" in schema
    assert "z" not in schema


def test_schema_duplicate_column_rejected():
    with pytest.raises(CatalogError):
        Schema([Column("a", DataType.INT), Column("a", DataType.INT)])


def test_schema_unknown_column_raises():
    schema = Schema([Column("a", DataType.INT)])
    with pytest.raises(CatalogError):
        schema.column("missing")


def test_schema_project_reorders():
    schema = Schema([Column("a", DataType.INT), Column("b", DataType.LONG)])
    projected = schema.project(["b", "a"])
    assert projected.names == ("b", "a")


def test_schema_concat_disambiguates():
    left = Schema([Column("a", DataType.INT)])
    right = Schema([Column("a", DataType.INT), Column("b", DataType.INT)])
    joined = left.concat(right)
    assert joined.names == ("a", "a_r", "b")


def test_schema_concat_without_disambiguation_rejects_dups():
    left = Schema([Column("a", DataType.INT)])
    with pytest.raises(CatalogError):
        left.concat(Schema([Column("a", DataType.INT)]), disambiguate=False)


def test_row_width_accounts_for_types():
    schema = Schema([Column("a", DataType.LONG), Column("s", DataType.STRING)])
    assert schema.row_width == 8 + 24
