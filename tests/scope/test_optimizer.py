"""Optimizer tests: memo, rules machinery, search, signatures, failures."""

import pytest

from repro.errors import OptimizationError
from repro.scope.compile import compile_script
from repro.scope.optimizer.rules.base import (
    RuleCategory,
    RuleConfiguration,
    RuleFlip,
    RuleSignature,
    default_registry,
)
from repro.scope.plan import physical
from repro.scope.plan.properties import Distribution, DistributionKind, PhysProps

from tests.conftest import COPY_SCRIPT, JOIN_AGG_SCRIPT


@pytest.fixture(scope="module")
def registry():
    return default_registry()


# -- rule framework ------------------------------------------------------------


def test_registry_has_all_four_categories(registry):
    for category in RuleCategory:
        assert registry.ids_in_category(category), category


def test_rule_ids_are_stable_positions(registry):
    for rule_id, rule in enumerate(registry):
        assert rule.rule_id == rule_id


def test_default_configuration_excludes_off_by_default(registry):
    config = registry.default_configuration()
    for rule in registry:
        expected = rule.category != RuleCategory.OFF_BY_DEFAULT
        assert config.is_enabled(rule.rule_id) == expected


def test_flip_is_involution(registry):
    config = registry.default_configuration()
    flipped = config.with_flip(3).with_flip(3)
    assert flipped == config


def test_flip_out_of_range(registry):
    with pytest.raises(OptimizationError):
        registry.default_configuration().with_flip(10_000)


def test_configuration_diff(registry):
    config = registry.default_configuration()
    assert config.with_flip(2).diff(config) == [2]


def test_flippable_excludes_required(registry):
    flippable = set(registry.flippable_ids)
    for rule_id in registry.ids_in_category(RuleCategory.REQUIRED):
        assert rule_id not in flippable


def test_signature_bitstring(registry):
    signature = RuleSignature.from_ids([0, 2], 4)
    assert signature.as_bitstring() == "1010"
    assert 2 in signature and 1 not in signature


def test_rule_flip_describe(registry):
    text = RuleFlip(registry.by_name("FilterImpl").rule_id, False).describe(registry)
    assert "OFF FilterImpl" in text


# -- optimization ------------------------------------------------------------------


def test_optimize_produces_plan_and_signature(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    result = engine.optimize(compiled)
    assert result.est_cost > 0
    names = {engine.registry.rule(i).name for i in result.signature_ids}
    assert "HashJoinPairImpl" in names or "HashJoinBroadcastImpl" in names
    assert "JoinResidualToKeys" in names  # equi keys were promoted
    assert "ExtractImpl" in names


def test_optimize_is_deterministic(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    first = engine.optimize(compiled)
    second = engine.optimize(compiled)
    assert first.est_cost == second.est_cost
    assert first.signature_ids == second.signature_ids


def test_plan_contains_exchanges_for_distribution(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    plan = engine.optimize(compiled).plan
    ops = [node.op for node in plan.walk()]
    assert any(isinstance(op, physical.Exchange) for op in ops)
    assert any(isinstance(op, physical.HashJoin) for op in ops)


def test_copy_job_signature_is_required_only(engine, small_catalog, registry):
    compiled = compile_script(COPY_SCRIPT, small_catalog)
    result = engine.optimize(compiled)
    non_required = result.signature.non_required_ids(engine.registry)
    assert non_required == frozenset()


def test_disabling_sole_aggregate_impl_fails(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    rule_id = engine.registry.by_name("HashAggregateImpl").rule_id
    config = engine.default_config.with_flip(rule_id)
    with pytest.raises(OptimizationError):
        engine.optimize(compiled, config)


def test_stream_agg_rescues_disabled_hash_agg(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    config = engine.default_config.with_flips(
        [
            engine.registry.by_name("HashAggregateImpl").rule_id,
            engine.registry.by_name("StreamAggregateImpl").rule_id,
        ]
    )
    result = engine.optimize(compiled, config)
    ops = [node.op for node in result.plan.walk()]
    assert any(isinstance(op, physical.StreamAggregate) for op in ops)


def test_disabling_residual_promotion_forces_nested_loops(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    default_result = engine.optimize(compiled)
    rule_id = engine.registry.by_name("JoinResidualToKeys").rule_id
    result = engine.optimize(compiled, engine.default_config.with_flip(rule_id))
    ops = [node.op for node in result.plan.walk()]
    assert any(isinstance(op, physical.NestedLoopJoin) for op in ops)
    # the nested-loop plan is catastrophically more expensive
    assert result.est_cost > default_result.est_cost * 10


def test_enabling_local_global_agg_lowers_cost(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    default_result = engine.optimize(compiled)
    rule_id = engine.registry.by_name("LocalGlobalAggregation").rule_id
    result = engine.optimize(compiled, engine.default_config.with_flip(rule_id))
    assert result.est_cost < default_result.est_cost
    ops = [node.op for node in result.plan.walk()]
    partials = [
        op for op in ops if isinstance(op, physical.HashAggregate) and op.is_partial
    ]
    assert partials


def test_restricting_search_never_lowers_true_rows_at_root(engine, small_catalog):
    """Different configs give plans with identical root cardinality."""
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    base = engine.optimize(compiled)
    rule_id = engine.registry.by_name("JoinCommute").rule_id
    other = engine.optimize(compiled, engine.default_config.with_flip(rule_id))
    base_roots = sorted(round(c.true_rows) for c in base.plan.children)
    other_roots = sorted(round(c.true_rows) for c in other.plan.children)
    assert base_roots == other_roots


def test_plan_extraction_dedups_shared_subplans(engine, small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    plan = engine.optimize(compiled).plan
    extracts = [n for n in plan.walk() if isinstance(n.op, physical.Extract)]
    tables = [n.op.table.name for n in extracts]
    # events is read by both output trees but the subplan is shared
    assert tables.count("events") == 1


# -- physical properties -------------------------------------------------------------


def test_distribution_satisfaction_rules():
    hash_ab = Distribution.hash(("a", "b"))
    assert hash_ab.satisfies(Distribution.any())
    assert hash_ab.satisfies(hash_ab)
    assert not hash_ab.satisfies(Distribution.hash(("a",)))
    assert Distribution.singleton().satisfies(hash_ab)
    assert not Distribution.random().satisfies(Distribution.broadcast())


def test_physprops_sort_prefix():
    sorted_props = PhysProps(Distribution.random(), (("a", True), ("b", False)))
    assert sorted_props.satisfies(PhysProps(Distribution.any(), (("a", True),)))
    assert not sorted_props.satisfies(PhysProps(Distribution.any(), (("b", False),)))


def test_distribution_validation():
    with pytest.raises(ValueError):
        Distribution(DistributionKind.HASH)
    with pytest.raises(ValueError):
        Distribution(DistributionKind.RANDOM, ("a",))


def test_distribution_remap_through_rename():
    dist = Distribution.hash(("a",))
    assert dist.remap({"a": "x"}) == Distribution.hash(("x",))
    assert dist.remap({}).kind == DistributionKind.RANDOM
