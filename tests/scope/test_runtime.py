"""Runtime simulator tests: stages, metrics, variance structure."""

import numpy as np
import pytest

from repro.scope.compile import compile_script
from repro.scope.plan import physical
from repro.scope.runtime.metrics import JobMetrics, relative_delta

from tests.conftest import COPY_SCRIPT, JOIN_AGG_SCRIPT


@pytest.fixture(scope="module")
def agg_plan(engine, small_catalog):
    return engine.optimize(compile_script(JOIN_AGG_SCRIPT, small_catalog))


def test_stage_graph_boundaries_at_exchanges(engine, agg_plan):
    graph = engine.runtime.stage_graph(agg_plan.plan)
    assert len(graph) >= 3  # at least extract stages + join stage + agg stage
    exchange_inputs = [
        inp for stage in graph for inp in stage.inputs if inp.kind == "exchange"
    ]
    assert exchange_inputs


def test_stage_graph_topological_producers_first(engine, agg_plan):
    graph = engine.runtime.stage_graph(agg_plan.plan)
    for stage in graph:
        for producer in stage.producer_ids:
            assert producer < stage.stage_id


def test_shared_subplan_counted_once(engine, agg_plan):
    graph = engine.runtime.stage_graph(agg_plan.plan)
    extract_stages = [
        s for s in graph for n in s.nodes if isinstance(n.op, physical.Extract)
    ]
    names = [
        n.op.table.name
        for s in graph
        for n in s.nodes
        if isinstance(n.op, physical.Extract)
    ]
    assert names.count("events") == 1


def test_execution_metrics_positive(engine, agg_plan):
    metrics = engine.execute(agg_plan, ("test", 0))
    assert metrics.latency_s > 0
    assert metrics.pnhours > 0
    assert metrics.vertices >= len(engine.runtime.stage_graph(agg_plan.plan))
    assert metrics.data_read > 0
    assert metrics.data_written > 0
    assert metrics.max_memory >= metrics.avg_memory > 0


def test_execution_is_deterministic_per_run_key(engine, agg_plan):
    first = engine.execute(agg_plan, ("same", 1))
    second = engine.execute(agg_plan, ("same", 1))
    assert first == second


def test_execution_varies_across_run_keys(engine, agg_plan):
    first = engine.execute(agg_plan, ("k", 1))
    second = engine.execute(agg_plan, ("k", 2))
    assert first.latency_s != second.latency_s


def test_latency_noisier_than_pnhours(engine, agg_plan):
    """The paper's core §5.1 observation, at the single-job level."""
    runs = [engine.execute(agg_plan, ("aa", i)) for i in range(12)]
    latency = np.array([m.latency_s for m in runs])
    pnhours = np.array([m.pnhours for m in runs])
    latency_cv = latency.std(ddof=1) / latency.mean()
    pnhours_cv = pnhours.std(ddof=1) / pnhours.mean()
    assert latency_cv > pnhours_cv
    assert pnhours_cv < 0.05


def test_data_volumes_stable_across_runs(engine, agg_plan):
    """I/O is data-bound: identical across A/A runs (paper §4.3)."""
    first = engine.execute(agg_plan, ("io", 1))
    second = engine.execute(agg_plan, ("io", 2))
    assert first.data_read == second.data_read
    assert first.data_written == second.data_written
    assert first.vertices == second.vertices


def test_copy_job_has_single_stage(engine, small_catalog):
    result = engine.optimize(compile_script(COPY_SCRIPT, small_catalog))
    graph = engine.runtime.stage_graph(result.plan)
    assert len(graph) == 1
    assert graph.stages[0].inputs[0].kind == "extract"


def test_relative_delta_convention():
    assert relative_delta(90.0, 100.0) == pytest.approx(-0.1)
    assert relative_delta(0.0, 0.0) == 0.0
    assert relative_delta(1.0, 0.0) == float("inf")


def test_metrics_delta():
    a = JobMetrics(100, 1.0, 10, 1e9, 1e8, 1e6, 1e6, 50, 50)
    b = JobMetrics(200, 2.0, 20, 2e9, 2e8, 1e6, 1e6, 100, 100)
    delta = a.delta(b)
    assert delta.latency == pytest.approx(-0.5)
    assert delta.pnhours == pytest.approx(-0.5)
    assert delta.vertices == pytest.approx(-0.5)


def test_parallelism_respects_max_tokens(engine, agg_plan):
    graph = engine.runtime.stage_graph(agg_plan.plan)
    for stage in graph:
        assert 1 <= stage.dop <= engine.config.cluster.max_tokens
