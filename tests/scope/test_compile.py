"""Compiler tests: bound AST → logical DAG with job-unique names."""

import pytest

from repro.errors import CompileError
from repro.scope.compile import compile_script
from repro.scope.plan import logical

from tests.conftest import COPY_SCRIPT, JOIN_AGG_SCRIPT


def test_compile_produces_super_root(small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    assert isinstance(compiled.root, logical.SuperRoot)
    assert len(compiled.output_roots) == 2
    assert all(isinstance(out, logical.Output) for out in compiled.output_roots)


def test_compile_shares_common_rowsets(small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    # `filtered` feeds both outputs: its Filter op must be one shared object
    filters = [op for op in logical.walk(compiled.root) if isinstance(op, logical.Filter)]
    etype_filters = [f for f in filters if "etype" in f.predicate.sql()]
    assert len(etype_filters) == 1


def test_compile_column_names_are_job_unique(small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    for op in logical.walk(compiled.root):
        names = op.schema.names
        assert len(names) == len(set(names))


def test_compile_join_condition_goes_to_residual(small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    joins = [op for op in logical.walk(compiled.root) if isinstance(op, logical.Join)]
    assert len(joins) == 1
    # equi-key recognition is the optimizer's job (JoinResidualToKeys rule)
    assert joins[0].equi_keys == ()
    assert joins[0].residual is not None


def test_compile_origins_track_base_columns(small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    base_origins = [o for o in compiled.origins.values() if o.is_base]
    assert any(o.table == "events" and o.column == "uid" for o in base_origins)
    assert any(o.table == "users" and o.column == "region" for o in base_origins)


def test_compile_aggregate_structure(small_catalog):
    compiled = compile_script(JOIN_AGG_SCRIPT, small_catalog)
    aggs = [op for op in logical.walk(compiled.root) if isinstance(op, logical.Aggregate)]
    assert len(aggs) == 1
    agg = aggs[0]
    assert len(agg.keys) == 1
    assert {spec.func for spec in agg.aggs} == {"COUNT", "SUM"}


def test_compile_copy_job_is_minimal(small_catalog):
    compiled = compile_script(COPY_SCRIPT, small_catalog)
    ops = list(logical.walk(compiled.root))
    kinds = {type(op) for op in ops}
    assert kinds == {logical.SuperRoot, logical.Output, logical.Get}


def test_compile_unknown_rowset_in_output(small_catalog):
    from repro.errors import BindError

    with pytest.raises(BindError):
        compile_script('OUTPUT ghost TO "/o";', small_catalog)


def test_compile_order_by_requires_selected_key(small_catalog):
    script = (
        "s = SELECT uid, COUNT(*) AS c FROM users GROUP BY uid ORDER BY c;\n"
        'OUTPUT s TO "/o";'
    )
    compiled = compile_script(script, small_catalog)
    sorts = [op for op in logical.walk(compiled.root) if isinstance(op, logical.Sort)]
    assert len(sorts) == 1


def test_compile_union_all(small_catalog):
    script = (
        "a = SELECT uid FROM users WHERE age < 30;\n"
        "b = SELECT uid FROM users WHERE age > 60;\n"
        "u = SELECT uid FROM a UNION ALL SELECT uid FROM b;\n"
        'OUTPUT u TO "/o";'
    )
    compiled = compile_script(script, small_catalog)
    unions = [op for op in logical.walk(compiled.root) if isinstance(op, logical.UnionAll)]
    assert len(unions) == 1


def test_compile_distinct_aggregate(small_catalog):
    script = (
        "s = SELECT region, COUNT(DISTINCT uid) AS u FROM users GROUP BY region;\n"
        'OUTPUT s TO "/o";'
    )
    compiled = compile_script(script, small_catalog)
    agg = next(op for op in logical.walk(compiled.root) if isinstance(op, logical.Aggregate))
    assert agg.aggs[0].distinct
