"""Observability plane: tracing, metrics, stats bus, and the no-op path.

The contracts under test:

* **span parenting** — nested spans parent correctly; ``child_span`` only
  creates when a parent exists; ``attach`` propagates without creating or
  finishing; ``start``/``finish`` survive double-finish;
* **trace completeness** — every admitted serving job produces exactly
  one *closed* root span, with the same child-stage set on the inline
  schedule and on threaded workers, on one shard and on two;
* **schedule independence** — the batch pipeline's span multiset is
  identical at 1 worker and 4 workers;
* **fingerprint neutrality** — ``DayReport.fingerprint()`` and
  ``CacheStats.core()`` are byte-identical with observability on, off,
  sharded and threaded (instrumentation is counter-free);
* **metrics** — labeled counters/gauges/histograms, Prometheus text
  exposition, pull-mode views (replace-by-name, exceptions contained);
* **bus** — topic filtering, bounded per-subscription queues that drop
  oldest and count drops, monotone sequence numbers;
* **bounded latency buffers** — lanes keep a fixed-size compile-latency
  ring; percentiles (now including p99) stay ``None`` until measured;
* **last-window summary** — ``ServerStats.last_window`` reports the most
  recent maintenance window's day, wall-clock and published hint version.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import Counter

import pytest

from repro import QOAdvisor, QOAdvisorServer, SimulationConfig
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ObsConfig,
    ServingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.obs import (
    NULL_SPAN,
    JsonlSink,
    MetricsRegistry,
    RingSink,
    Sample,
    StatsBus,
    Tracer,
)
from repro.serving.stats import LatencyRing, WindowSummary, percentile


def _config(
    workers: int = 1,
    shards: int = 1,
    obs: bool = True,
    seed: int = 555,
    **obs_kwargs,
) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards),
        obs=ObsConfig(enabled=obs, **obs_kwargs),
    )


# -- tracer -------------------------------------------------------------------


def test_span_nesting_parents_and_trace_ids():
    ring = RingSink(64)
    tracer = Tracer([ring])
    with tracer.span("outer", day=3) as outer:
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
        assert tracer.current() is outer
    assert tracer.current() is None
    names = [s.name for s in ring.spans()]
    assert names == ["inner", "outer"]  # finished in close order
    assert ring.spans()[1].attrs["day"] == 3


def test_child_span_requires_a_parent():
    tracer = Tracer([RingSink(8)])
    assert tracer.child_span("orphan") is NULL_SPAN
    with tracer.span("root"):
        with tracer.child_span("child") as child:
            assert child is not NULL_SPAN
    # no orphan roots were created
    assert all(
        s.parent_id is not None or s.name == "root"
        for s in tracer.sinks[0].spans()
    )


def test_start_finish_cross_thread_and_idempotent():
    ring = RingSink(8)
    tracer = Tracer([ring])
    span = tracer.start("job", trace_id="job:x#1")
    seen = []

    def worker():
        with tracer.attach(span):
            assert tracer.current() is span
            with tracer.child_span("compile") as child:
                seen.append(child.parent_id)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert seen == [span.span_id]
    assert not span.finished  # attach never finishes
    tracer.finish(span)
    tracer.finish(span)  # double-finish is a no-op
    assert sum(1 for s in ring.spans() if s.name == "job") == 1


def test_events_attach_to_current_span_or_drop():
    ring = RingSink(8)
    tracer = Tracer([ring])
    tracer.event("lost", x=1)  # no current span: dropped, no error
    with tracer.span("root"):
        tracer.event("kept", shard=2)
    (root,) = ring.spans()
    assert root.to_dict()["events"] == [{"name": "kept", "shard": 2}]


def test_jsonl_sink_writes_one_object_per_span(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer([JsonlSink(path)])
    with tracer.span("a", day=1):
        with tracer.span("b"):
            pass
    tracer.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [rec["name"] for rec in lines] == ["b", "a"]
    assert lines[0]["parent"] == lines[1]["span"]
    assert lines[0]["trace"] == lines[1]["trace"]
    assert {"trace", "span", "parent", "name", "start_s", "dur_s", "status"} <= set(
        lines[0]
    )


def test_ring_sink_is_bounded_but_counts_everything():
    ring = RingSink(4)
    tracer = Tracer([ring])
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert len(ring.spans()) == 4
    assert ring.total == 10
    assert [s.name for s in ring.spans()] == ["s6", "s7", "s8", "s9"]


# -- metrics ------------------------------------------------------------------


def test_counter_gauge_histogram_and_exposition():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "jobs", labels=("shard",))
    jobs.labels(shard="0").inc()
    jobs.labels(shard="0").inc(2)
    jobs.labels(shard="1").inc()
    depth = registry.gauge("queue_depth", "depth")
    depth.set(7)
    lat = registry.histogram("latency_seconds", "lat", buckets=(0.1, 1.0))
    lat.observe(0.05)
    lat.observe(0.5)
    lat.observe(5.0)
    text = registry.exposition()
    assert '# TYPE jobs_total counter' in text
    assert 'jobs_total{shard="0"} 3' in text
    assert 'jobs_total{shard="1"} 1' in text
    assert "queue_depth 7" in text
    assert 'latency_seconds_bucket{le="0.1"} 1' in text
    assert 'latency_seconds_bucket{le="1"} 2' in text
    assert 'latency_seconds_bucket{le="+Inf"} 3' in text
    assert "latency_seconds_count 3" in text
    with pytest.raises(ValueError):
        jobs.labels(shard="0").inc(-1)
    with pytest.raises(ValueError):
        registry.gauge("jobs_total", "kind conflict")


def test_views_replace_by_name_and_contain_exceptions():
    registry = MetricsRegistry()
    registry.register_view("v", lambda: [Sample("v", {}, 1.0)])
    registry.register_view("v", lambda: [Sample("v", {}, 2.0)])
    assert registry.collect()["v"][0].value == 2.0

    def broken():
        raise RuntimeError("view died")

    registry.register_view("bad", broken)
    assert registry.collect()["bad"] == []  # never takes exposition down
    registry.exposition()


# -- stats bus ----------------------------------------------------------------


def test_bus_topics_bounds_and_sequence():
    bus = StatsBus(queue_size=8)
    everything = bus.subscribe()
    only_shard = bus.subscribe(topics=("shard",))
    small = bus.subscribe(queue_size=2)
    for i in range(5):
        bus.publish("shard", {"i": i})
    bus.publish("window", {"day": 0})
    shard_events = only_shard.poll(100)
    assert [e["i"] for e in shard_events] == [0, 1, 2, 3, 4]
    assert all(e["topic"] == "shard" for e in shard_events)
    seqs = [e["seq"] for e in everything.poll(100)]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    # the small subscription dropped oldest and counted the drops
    kept = small.poll(100)
    assert len(kept) == 2
    assert small.dropped == 4
    bus.unsubscribe(everything)
    assert bus.subscriber_count == 2


# -- fingerprint neutrality (the hard constraint) -----------------------------


@pytest.mark.parametrize("shards,workers", [(1, 4), (2, 1), (2, 4)])
def test_fingerprints_identical_with_obs_on_off(shards, workers):
    def day0(obs, s, w):
        advisor = QOAdvisor(_config(workers=w, shards=s, obs=obs))
        report = advisor.run_day(0)
        out = (report.fingerprint(), report.cache_stats.core())
        advisor.close()
        return out

    baseline = day0(False, 1, 1)
    assert day0(True, shards, workers) == baseline
    assert day0(False, shards, workers) == baseline


def test_batch_span_multiset_is_worker_count_independent():
    def spans(workers):
        advisor = QOAdvisor(_config(workers=workers))
        advisor.run_day(0)
        counted = Counter(s.name for s in advisor.obs.ring.spans())
        advisor.close()
        return counted

    assert spans(1) == spans(4)


def test_batch_day_trace_has_job_and_stage_children():
    advisor = QOAdvisor(_config())
    advisor.run_day(0)
    spans = advisor.obs.ring.spans()
    roots = [s for s in spans if s.parent_id is None]
    assert [s.name for s in roots] == ["day"]
    assert roots[0].trace_id == "day:0"
    by_parent = Counter(s.parent_id for s in spans)
    stage_names = {
        s.name for s in spans if s.parent_id == roots[0].span_id
    }
    assert "stage:production" in stage_names
    assert by_parent[roots[0].span_id] >= 5
    # every span landed in the day's trace
    assert {s.trace_id for s in spans} == {"day:0"}
    advisor.close()


# -- serving traces -----------------------------------------------------------


def _serve_day(workers_per_shard: int, shards: int):
    config = _config(shards=shards)
    config = dataclasses.replace(
        config,
        serving=ServingConfig(workers_per_shard=workers_per_shard),
    )
    advisor = QOAdvisor(config)
    server = QOAdvisorServer(advisor)
    server.start()
    report = server.stream_day(0)
    stats = server.stats()
    spans = advisor.obs.ring.spans()
    server.shutdown()
    return report, stats, spans


@pytest.mark.parametrize("shards", [1, 2])
def test_every_admitted_job_closes_exactly_one_root_span(shards):
    def job_traces(workers_per_shard):
        report, stats, spans = _serve_day(workers_per_shard, shards)
        roots = [
            s for s in spans if s.name == "job" and s.parent_id is None
        ]
        assert len(roots) == stats.jobs_submitted
        assert all(s.finished for s in roots)
        assert len({s.trace_id for s in roots}) == len(roots)
        # child-stage set per job trace (order-free: multiset over traces)
        children = {}
        for span in spans:
            if span.parent_id is not None and span.trace_id.startswith("job:"):
                children.setdefault(span.trace_id, set())
        for span in spans:
            if span.trace_id in children and span.parent_id is not None:
                children[span.trace_id].add(span.name)
        shape = Counter(frozenset(v) for v in children.values())
        return report.fingerprint(), shape

    inline_fp, inline_shape = job_traces(0)
    threaded_fp, threaded_shape = job_traces(4)
    assert inline_fp == threaded_fp
    assert inline_shape == threaded_shape
    assert all("steer" in s and "execute" in s for s in inline_shape)


def test_window_trace_and_last_window_summary():
    report, stats, spans = _serve_day(0, 1)
    windows = [s for s in spans if s.name == "window"]
    assert len(windows) == 1
    assert windows[0].trace_id == "window:0"
    assert windows[0].parent_id is None
    stage_children = {
        s.name for s in spans if s.parent_id == windows[0].span_id
    }
    assert any(name.startswith("stage:") for name in stage_children)
    assert isinstance(stats.last_window, WindowSummary)
    assert stats.last_window.day == 0
    assert stats.last_window.jobs == len(report.production_runs)
    assert stats.last_window.wall_s > 0
    assert stats.last_window.hint_version == report.hint_version
    assert "last window" in stats.render()


def test_serving_bus_and_metric_views():
    config = _config(shards=2)
    config = dataclasses.replace(
        config, serving=ServingConfig(workers_per_shard=2)
    )
    advisor = QOAdvisor(config)
    server = QOAdvisorServer(advisor)
    subscription = advisor.obs.bus.subscribe(topics=("shard", "window"))
    server.start()
    server.stream_day(0)
    events = subscription.poll(10_000)
    shard_events = [e for e in events if e["topic"] == "shard"]
    window_events = [e for e in events if e["topic"] == "window"]
    assert shard_events and window_events
    assert {e["shard"] for e in shard_events} == {0, 1}
    assert window_events[-1]["day"] == 0
    text = advisor.obs.metrics.exposition()
    assert "repro_serving_completed_total" in text
    assert "repro_serving_compile_latency_seconds" in text
    assert "repro_cache_hits_total" in text
    assert "repro_spans_finished_total" in text
    assert "repro_hint_version" in text
    server.shutdown()


# -- disabled fast path -------------------------------------------------------


def test_disabled_obs_is_inert():
    advisor = QOAdvisor(_config(obs=False))
    assert not advisor.obs.enabled
    assert advisor.obs.ring is None
    assert not advisor.obs.tracer.enabled
    advisor.run_day(0)
    assert advisor.obs.metrics.exposition() == ""
    subscription = advisor.obs.bus.subscribe()
    assert subscription.poll(10) == []
    advisor.close()


# -- bounded latency buffers (serving/stats) ----------------------------------


def test_latency_ring_bounds_and_percentiles():
    ring = LatencyRing(4)
    assert percentile(ring.snapshot(), 99) is None  # unmeasured stays None
    for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        ring.append(value)
    assert len(ring) == 4
    assert ring.total == 6
    assert ring.snapshot() == [3.0, 4.0, 5.0, 6.0]
    with pytest.raises(ValueError):
        LatencyRing(0)


def test_lane_latency_buffer_is_bounded_and_reports_p99():
    config = _config(obs=False)
    config = dataclasses.replace(
        config,
        serving=ServingConfig(workers_per_shard=0, latency_window=8),
    )
    advisor = QOAdvisor(config)
    server = QOAdvisorServer(advisor)
    server.start()
    server.submit_day(0)
    server.drain()
    stats = server.stats()
    (shard,) = stats.shards
    assert shard.compile_observations > 8  # more history than the window
    lane = server._lanes[0]
    assert len(lane.compile_latency) <= 8
    assert shard.compile_p99_s is not None
    assert shard.compile_p50_s <= shard.compile_p95_s <= shard.compile_p99_s
    assert "p99" in stats.render()
    server.shutdown()


def test_fresh_lane_percentiles_are_none_not_zero():
    config = _config(obs=False)
    advisor = QOAdvisor(config)
    server = QOAdvisorServer(advisor)
    (shard,) = server.stats().shards
    assert shard.compile_p50_s is None
    assert shard.compile_p95_s is None
    assert shard.compile_p99_s is None
    assert shard.compile_observations == 0
    server.shutdown()
