"""End-to-end integration tests: the full QO-Advisor loop on a tiny tier."""

import dataclasses

import pytest

from repro import QOAdvisor, SimulationConfig
from repro.config import FlightingConfig, WorkloadConfig
from repro.core.recompile import CostOutcome


@pytest.fixture(scope="module")
def advisor():
    config = dataclasses.replace(
        SimulationConfig(seed=77),
        workload=WorkloadConfig(num_templates=20, num_tables=12),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
    )
    advisor = QOAdvisor(config)
    advisor.bootstrap(start_day=0, days=6, )
    return advisor


def test_bootstrap_fits_validation_model(advisor):
    assert advisor.pipeline.validation_model.is_fitted
    assert advisor.pipeline.validation_model.training_samples >= 4


def test_daily_reports_cover_all_stages(advisor):
    reports = advisor.simulate(start_day=6, days=3, learned_after=1)
    for report in reports:
        assert report.production_runs
        assert report.view is not None and len(report.view) == len(report.production_runs)
        assert report.features
        assert 0.3 < report.steerable_fraction <= 1.0
        assert len(report.recommendations) == sum(1 for f in report.features if f.steerable)
        assert len(report.outcomes) == len(report.recommendations)


def test_rewards_flow_to_personalizer(advisor):
    assert advisor.personalizer.pending_events == 0
    assert len(advisor.personalizer.event_log) > 0


def test_hints_eventually_deploy_and_apply(advisor):
    reports = advisor.simulate(start_day=9, days=4, learned_after=0)
    total_validated = sum(len(r.validated) for r in advisor.reports)
    if total_validated == 0:
        pytest.skip("no flip cleared validation in this tiny run")
    assert any(r.active_hint_count > 0 for r in advisor.reports)
    hints = advisor.sis.active_hints()
    # hinted templates compile under the flipped configuration
    template_id, flip = next(iter(hints.items()))
    jobs = [j for j in advisor.workload.jobs_for_day(99) if j.template_id == template_id]
    if jobs:
        config = advisor.engine.configuration_for(jobs[0])
        assert config.is_enabled(flip.rule_id) == flip.turn_on


def test_outcome_counts_accounting(advisor):
    report = advisor.reports[-1]
    counts = report.outcome_counts()
    assert sum(counts.values()) == len(report.outcomes)
    for outcome in CostOutcome:
        assert counts[outcome] >= 0


def test_pipeline_is_reproducible():
    config = dataclasses.replace(
        SimulationConfig(seed=555),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
    )
    first = QOAdvisor(config)
    second = QOAdvisor(config)
    report_a = first.run_day(0)
    report_b = second.run_day(0)
    assert len(report_a.production_runs) == len(report_b.production_runs)
    assert report_a.outcome_counts() == report_b.outcome_counts()
    metrics_a = [r.metrics.pnhours for r in report_a.production_runs]
    metrics_b = [r.metrics.pnhours for r in report_b.production_runs]
    assert metrics_a == metrics_b
