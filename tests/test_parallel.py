"""The job-parallel backbone: determinism at any worker count.

Three contracts are locked here:

* :meth:`Executor.map_jobs` is order-preserving for every implementation;
* a pipeline day (and the bootstrap corpus) is **byte-identical** across
  ``workers=1``, ``workers=4`` and an explicit :class:`SerialExecutor` —
  all per-job randomness is keyed, so thread scheduling must never leak
  into a report;
* the compilation service is thread-safe: concurrent identical misses
  coalesce into one optimizer invocation, and the stats counters never
  lose updates under contention.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro import QOAdvisor, SimulationConfig
from repro.config import ExecutionConfig, FlightingConfig, WorkloadConfig
from repro.core.pipeline import STAGE_NAMES
from repro.parallel import SerialExecutor, ThreadedExecutor, build_executor
from repro.scope.engine import ScopeEngine
from repro.scope.optimizer.rules.base import RuleFlip


# -- the executor contract ----------------------------------------------------


def test_build_executor_selects_implementation():
    assert isinstance(build_executor(ExecutionConfig(workers=1)), SerialExecutor)
    threaded = build_executor(ExecutionConfig(workers=4))
    assert isinstance(threaded, ThreadedExecutor)
    assert threaded.workers == 4
    threaded.close()


def test_threaded_executor_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        ThreadedExecutor(0)


def test_map_jobs_preserves_order_under_scheduling_jitter():
    def jittered(i: int) -> int:
        time.sleep(0.002 * ((i * 7) % 5))  # later items often finish first
        return i * i

    items = list(range(24))
    expected = [i * i for i in items]
    assert SerialExecutor().map_jobs(jittered, items) == expected
    with ThreadedExecutor(6) as executor:
        assert executor.map_jobs(jittered, items) == expected


def test_map_jobs_propagates_exceptions():
    def boom(i: int) -> int:
        if i == 3:
            raise RuntimeError("job 3 failed")
        return i

    with ThreadedExecutor(4) as executor:
        with pytest.raises(RuntimeError, match="job 3"):
            executor.map_jobs(boom, range(8))


def test_executor_close_is_idempotent():
    executor = ThreadedExecutor(2)
    assert executor.map_jobs(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    executor.close()
    executor.close()
    # a closed executor lazily re-creates its pool on the next map
    assert executor.map_jobs(lambda x: x + 1, [4, 5]) == [5, 6]
    executor.close()


# -- pipeline determinism -----------------------------------------------------


def _tiny_config(workers: int, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers),
    )


def test_run_day_byte_identical_across_worker_counts():
    fingerprints = []
    for advisor in (
        QOAdvisor(_tiny_config(workers=1)),
        QOAdvisor(_tiny_config(workers=4)),
        QOAdvisor(_tiny_config(workers=4), executor=SerialExecutor()),
    ):
        report = advisor.run_day(0)
        fingerprints.append(report.fingerprint())
        # cache accounting is part of the contract: the parallel schedule
        # must issue exactly the compilations the serial one does.  The
        # contract assumes the working set fits the cache (LRU recency
        # under concurrent hits is the one schedule-dependent quantity).
        assert report.cache_stats is not None
        assert report.cache_stats.evictions == 0
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]


def _corpus_trace(results) -> list[tuple]:
    return [
        (
            r.job.job_id,
            r.status.value,
            round(r.flight_seconds, 9),
            r.day,
            repr(r.baseline),
            repr(r.treatment),
        )
        for r in results
    ]


def test_bootstrap_corpus_byte_identical_across_worker_counts():
    traces = []
    stats = []
    for workers in (1, 4):
        advisor = QOAdvisor(_tiny_config(workers, seed=91))
        corpus = advisor.pipeline.bootstrap_validation_model(
            start_day=0, days=4, flights_per_day=8
        )
        traces.append(_corpus_trace(corpus))
        stats.append(advisor.engine.compilation.stats)
    assert traces[0] == traces[1]
    assert len(traces[0]) > 0
    # speculative batch evaluation is position-based, so even the cumulative
    # compile accounting matches the serial schedule
    assert stats[0] == stats[1]


def test_stage_timings_cover_all_stages_even_when_model_unfitted():
    advisor = QOAdvisor(_tiny_config(workers=1))
    report = advisor.run_day(0)
    assert set(report.stage_timings) == set(STAGE_NAMES)
    # the validation model was never fitted: those stages report 0.0
    # instead of being absent, so analysis code never KeyErrors
    assert report.stage_timings["validate"] == 0.0
    assert report.stage_timings["hintgen"] == 0.0
    assert report.stage_timings["production"] > 0.0
    assert all(v >= 0.0 for v in report.stage_timings.values())


# -- cache thread safety ------------------------------------------------------


@pytest.fixture()
def stress_engine(small_catalog) -> ScopeEngine:
    return ScopeEngine(small_catalog, SimulationConfig(seed=101))


def test_concurrent_identical_compiles_invoke_optimizer_once(
    stress_engine, join_agg_job
):
    threads = 8
    barrier = threading.Barrier(threads)
    results = [None] * threads

    def hammer(slot: int) -> None:
        barrier.wait()
        results[slot] = stress_engine.compile_job(join_agg_job)

    workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    stats = stress_engine.compilation.stats
    # concurrent-miss dedup: one leader compiled, everyone shares its plan
    assert stats.optimizer_invocations == 1
    assert stats.misses == 1
    assert stats.hits == threads - 1
    assert all(result is results[0] for result in results)


def test_concurrent_mixed_compiles_lose_no_stat_updates(
    stress_engine, join_agg_job, simple_job, copy_job
):
    jobs = [join_agg_job, simple_job, copy_job]
    flips = [None, RuleFlip(stress_engine.registry.by_name("LocalGlobalAggregation").rule_id, True)]
    rounds = 6
    threads = 6
    barrier = threading.Barrier(threads)

    def hammer(slot: int) -> None:
        barrier.wait()
        for i in range(rounds):
            job = jobs[(slot + i) % len(jobs)]
            flip = flips[(slot * rounds + i) % len(flips)]
            stress_engine.compile_job(job, flip)

    workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    stats = stress_engine.compilation.stats
    distinct_keys = len({(job.script, flip is not None) for job in jobs for flip in flips})
    total_lookups = threads * rounds
    # no lost updates: every lookup is accounted exactly once, and the
    # optimizer ran exactly once per distinct (script, configuration) key
    assert stats.hits + stats.misses == total_lookups
    assert stats.optimizer_invocations == distinct_keys
    assert stats.misses == distinct_keys
    assert len(stress_engine.compilation.cache) == distinct_keys
