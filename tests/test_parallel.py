"""The job-parallel backbone: determinism at any worker count.

Three contracts are locked here:

* :meth:`Executor.map_jobs` is order-preserving for every implementation;
* a pipeline day (and the bootstrap corpus) is **byte-identical** across
  ``workers=1``, ``workers=4`` and an explicit :class:`SerialExecutor` —
  all per-job randomness is keyed, so thread scheduling must never leak
  into a report;
* the compilation service is thread-safe: concurrent identical misses
  coalesce into one optimizer invocation, and the stats counters never
  lose updates under contention.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro import QOAdvisor, SimulationConfig
from repro.config import CacheConfig, ExecutionConfig, FlightingConfig, WorkloadConfig
from repro.core.pipeline import STAGE_NAMES
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    build_executor,
)
from repro.scope.engine import ScopeEngine
from repro.scope.optimizer.rules.base import RuleFlip


# -- the executor contract ----------------------------------------------------


def test_build_executor_selects_implementation():
    assert isinstance(build_executor(ExecutionConfig(workers=1)), SerialExecutor)
    threaded = build_executor(ExecutionConfig(workers=4, backend="thread"))
    assert isinstance(threaded, ThreadedExecutor)
    assert threaded.workers == 4
    threaded.close()
    forked = build_executor(ExecutionConfig(workers=4, backend="process"))
    assert isinstance(forked, ProcessExecutor)
    with pytest.raises(ValueError, match="backend"):
        build_executor(ExecutionConfig(workers=4, backend="quantum"))


def test_threaded_executor_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        ThreadedExecutor(0)


def test_map_jobs_preserves_order_under_scheduling_jitter():
    def jittered(i: int) -> int:
        time.sleep(0.002 * ((i * 7) % 5))  # later items often finish first
        return i * i

    items = list(range(24))
    expected = [i * i for i in items]
    assert SerialExecutor().map_jobs(jittered, items) == expected
    with ThreadedExecutor(6) as executor:
        assert executor.map_jobs(jittered, items) == expected


def test_map_jobs_propagates_exceptions():
    def boom(i: int) -> int:
        if i == 3:
            raise RuntimeError("job 3 failed")
        return i

    with ThreadedExecutor(4) as executor:
        with pytest.raises(RuntimeError, match="job 3"):
            executor.map_jobs(boom, range(8))


def test_executor_close_is_idempotent():
    executor = ThreadedExecutor(2)
    assert executor.map_jobs(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    executor.close()
    executor.close()
    # a closed executor lazily re-creates its pool on the next map
    assert executor.map_jobs(lambda x: x + 1, [4, 5]) == [5, 6]
    executor.close()


# -- the process backend ------------------------------------------------------


def test_process_executor_matches_serial_for_pure_functions():
    def work(i: int) -> int:
        return i * i + 7

    items = list(range(37))
    expected = SerialExecutor().map_jobs(work, items)
    executor = ProcessExecutor(4)
    assert executor.map_jobs(work, items) == expected
    # closures survive the fork (the callable is inherited, never pickled)
    offset = 1000
    assert ProcessExecutor(3).map_jobs(lambda i: i + offset, [1, 2, 3]) == [
        1001,
        1002,
        1003,
    ]


def test_process_executor_preserves_order_and_propagates_exceptions():
    def boom(i: int) -> int:
        if i in (5, 11):
            raise RuntimeError(f"job {i} failed")
        return i

    executor = ProcessExecutor(4)
    # the earliest item's exception is the one that propagates
    with pytest.raises(RuntimeError, match="job 5"):
        executor.map_jobs(boom, range(16))
    assert executor.map_jobs(lambda i: i * 2, range(9)) == [i * 2 for i in range(9)]


def test_process_executor_small_batches_stay_in_process():
    executor = ProcessExecutor(4)
    # one item: no fork round-trip, same contract
    assert executor.map_jobs(lambda i: i + 1, [41]) == [42]
    assert executor.map_jobs(lambda i: i, []) == []


def test_process_executor_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        ProcessExecutor(0)


def test_process_executor_survives_unpicklable_results():
    """A result that cannot pickle must surface as an error, not hang the
    parent or leave sibling workers unjoined."""
    with pytest.raises(RuntimeError, match="unpicklable"):
        ProcessExecutor(3).map_jobs(lambda i: (i, lambda: None), range(6))
    # the executor is still usable afterwards (everything was drained)
    assert ProcessExecutor(3).map_jobs(lambda i: i + 1, range(6)) == list(range(1, 7))


class _NeedsTwoArgs(Exception):
    """Pickles fine but explodes on unpickle (reduce re-calls __init__)."""

    def __init__(self, a, b):
        super().__init__(a)


def test_process_executor_survives_exceptions_that_fail_to_unpickle():
    def boom(i: int) -> int:
        if i == 2:
            raise _NeedsTwoArgs("a", "b")
        return i

    with pytest.raises(RuntimeError):
        ProcessExecutor(3).map_jobs(boom, range(6))
    assert ProcessExecutor(3).map_jobs(lambda i: i, range(6)) == list(range(6))


def test_advisor_refuses_process_backend():
    """The pipeline's closures share the plan cache; forked children would
    warm throwaway copies and silently break the compile accounting, so the
    advisor refuses the process backend instead."""
    config = dataclasses.replace(
        _tiny_config(workers=4),
        execution=ExecutionConfig(workers=4, backend="process"),
    )
    with pytest.raises(ValueError, match="backend"):
        QOAdvisor(config)
    # workers<=1 is always the serial executor, so the backend is moot
    # (REPRO_BACKEND=process exported globally must not break the advisor)
    serial_config = dataclasses.replace(
        _tiny_config(workers=1),
        execution=ExecutionConfig(workers=1, backend="process"),
    )
    advisor = QOAdvisor(serial_config)
    assert isinstance(advisor.executor, SerialExecutor)
    advisor.close()


# -- pipeline determinism -----------------------------------------------------


def _tiny_config(workers: int, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers),
    )


def test_run_day_byte_identical_across_worker_counts():
    fingerprints = []
    for advisor in (
        QOAdvisor(_tiny_config(workers=1)),
        QOAdvisor(_tiny_config(workers=4)),
        QOAdvisor(_tiny_config(workers=4), executor=SerialExecutor()),
    ):
        report = advisor.run_day(0)
        fingerprints.append(report.fingerprint())
        # cache accounting is part of the contract: the parallel schedule
        # must issue exactly the compilations the serial one does
        assert report.cache_stats is not None
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]


def test_run_day_byte_identical_under_evictions():
    """The eviction stress lock: recency is epoch-granular and capacity is
    enforced at stage barriers, so even a cache far too small for the day's
    working set evicts the same victims — and issues the same compiles — at
    any worker count."""
    reports = []
    for workers in (1, 4):
        config = dataclasses.replace(
            _tiny_config(workers), cache=CacheConfig(capacity=8, script_capacity=4)
        )
        with QOAdvisor(config) as advisor:
            reports.append(advisor.run_day(0))
    serial, parallel = reports
    assert serial.cache_stats.evictions > 0  # the stress is real
    assert serial.cache_stats == parallel.cache_stats
    assert serial.fingerprint() == parallel.fingerprint()


def _corpus_trace(results) -> list[tuple]:
    return [
        (
            r.job.job_id,
            r.status.value,
            round(r.flight_seconds, 9),
            r.day,
            repr(r.baseline),
            repr(r.treatment),
        )
        for r in results
    ]


def test_bootstrap_corpus_byte_identical_across_worker_counts():
    traces = []
    stats = []
    for workers in (1, 4):
        advisor = QOAdvisor(_tiny_config(workers, seed=91))
        corpus = advisor.pipeline.bootstrap_validation_model(
            start_day=0, days=4, flights_per_day=8
        )
        traces.append(_corpus_trace(corpus))
        stats.append(advisor.engine.compilation.stats)
    assert traces[0] == traces[1]
    assert len(traces[0]) > 0
    # speculative batch evaluation is position-based, so even the cumulative
    # compile accounting matches the serial schedule
    assert stats[0] == stats[1]


def test_stage_timings_cover_all_stages_even_when_model_unfitted():
    advisor = QOAdvisor(_tiny_config(workers=1))
    report = advisor.run_day(0)
    assert set(report.stage_timings) == set(STAGE_NAMES)
    # the validation model was never fitted: those stages report 0.0
    # instead of being absent, so analysis code never KeyErrors
    assert report.stage_timings["validate"] == 0.0
    assert report.stage_timings["hintgen"] == 0.0
    assert report.stage_timings["production"] > 0.0
    assert all(v >= 0.0 for v in report.stage_timings.values())


# -- cache thread safety ------------------------------------------------------


@pytest.fixture()
def stress_engine(small_catalog) -> ScopeEngine:
    return ScopeEngine(small_catalog, SimulationConfig(seed=101))


def test_concurrent_identical_compiles_invoke_optimizer_once(
    stress_engine, join_agg_job
):
    threads = 8
    barrier = threading.Barrier(threads)
    results = [None] * threads

    def hammer(slot: int) -> None:
        barrier.wait()
        results[slot] = stress_engine.compile_job(join_agg_job)

    workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    stats = stress_engine.compilation.stats
    # concurrent-miss dedup: one leader compiled, everyone shares its plan
    assert stats.optimizer_invocations == 1
    assert stats.misses == 1
    assert stats.hits == threads - 1
    assert all(result is results[0] for result in results)


def test_concurrent_mixed_compiles_lose_no_stat_updates(
    stress_engine, join_agg_job, simple_job, copy_job
):
    jobs = [join_agg_job, simple_job, copy_job]
    flips = [None, RuleFlip(stress_engine.registry.by_name("LocalGlobalAggregation").rule_id, True)]
    rounds = 6
    threads = 6
    barrier = threading.Barrier(threads)

    def hammer(slot: int) -> None:
        barrier.wait()
        for i in range(rounds):
            job = jobs[(slot + i) % len(jobs)]
            flip = flips[(slot * rounds + i) % len(flips)]
            stress_engine.compile_job(job, flip)

    workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    stats = stress_engine.compilation.stats
    distinct_keys = len({(job.script, flip is not None) for job in jobs for flip in flips})
    total_lookups = threads * rounds
    # no lost updates: every lookup is accounted exactly once, and the
    # optimizer ran exactly once per distinct (script, configuration) key
    assert stats.hits + stats.misses == total_lookups
    assert stats.optimizer_invocations == distinct_keys
    assert stats.misses == distinct_keys
    assert len(stress_engine.compilation.cache) == distinct_keys
