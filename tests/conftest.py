"""Shared fixtures: a small catalog, engine and workload.

Set ``REPRO_QA_LOCKS=1`` to run the whole suite under the runtime
lock-order tracer (:mod:`repro.qa.lockgraph`): every lock-bearing object
constructed during the session self-instruments, and the session fails
at teardown on any lock-order cycle or fan-out hazard observed anywhere
in the run.  Off by default — the toggle costs nothing when unset.
"""

from __future__ import annotations

import os

import pytest

from repro.config import SimulationConfig, WorkloadConfig
from repro.scope.catalog import Catalog, ColumnStats, TableDef
from repro.scope.engine import ScopeEngine
from repro.scope.jobs import JobInstance
from repro.scope.types import Column, DataType, Schema
from repro.workload.generator import Workload, build_workload
import dataclasses


@pytest.fixture(scope="session", autouse=True)
def _qa_lock_tracing():
    """Opt-in session-wide deadlock detection (``REPRO_QA_LOCKS=1``)."""
    if os.environ.get("REPRO_QA_LOCKS") != "1":
        yield
        return
    from repro.qa import LockRegistry, auto_instrument_constructors

    registry = LockRegistry()
    undo = auto_instrument_constructors(registry)
    try:
        yield
    finally:
        undo()
    registry.assert_clean()


@pytest.fixture(scope="session")
def small_catalog() -> Catalog:
    catalog = Catalog(stats_seed=3, stats_staleness_sigma=0.1)
    catalog.add_table(
        TableDef(
            "users",
            Schema(
                [
                    Column("uid", DataType.LONG),
                    Column("age", DataType.INT),
                    Column("region", DataType.INT),
                ]
            ),
            1_000_000,
            {
                "uid": ColumnStats(0, 1e6, 1_000_000),
                "age": ColumnStats(0, 100, 100),
                "region": ColumnStats(0, 50, 50),
            },
        )
    )
    catalog.add_table(
        TableDef(
            "events",
            Schema(
                [
                    Column("uid", DataType.LONG),
                    Column("etype", DataType.INT),
                    Column("val", DataType.DOUBLE),
                ]
            ),
            20_000_000,
            {
                "uid": ColumnStats(0, 1e6, 900_000),
                "etype": ColumnStats(0, 20, 20),
                "val": ColumnStats(0, 1e4, 100_000),
            },
        )
    )
    return catalog


JOIN_AGG_SCRIPT = """
raw = EXTRACT uid:long, etype:int, val:double FROM "/shares/data/events.ss";
filtered = SELECT uid, val FROM raw WHERE etype == 3 AND val > 10.5;
joined = SELECT u.region, f.val FROM filtered AS f JOIN users AS u ON f.uid == u.uid;
agg = SELECT region, COUNT(*) AS cnt, SUM(val) AS total FROM joined GROUP BY region;
OUTPUT agg TO "/out/agg.ss";
OUTPUT filtered TO "/out/filtered.ss";
"""

SIMPLE_SCRIPT = """
raw = EXTRACT uid:long, etype:int FROM "/shares/data/events.ss";
slim = SELECT uid FROM raw WHERE etype == 3;
OUTPUT slim TO "/out/slim.ss";
"""

COPY_SCRIPT = """
raw = EXTRACT uid:long, age:int FROM "/shares/data/users.ss";
OUTPUT raw TO "/out/copy.ss";
"""


@pytest.fixture(scope="session")
def engine(small_catalog) -> ScopeEngine:
    return ScopeEngine(small_catalog, SimulationConfig(seed=101))


@pytest.fixture(scope="session")
def join_agg_job() -> JobInstance:
    return JobInstance("j-agg", "t-agg", "join_agg", JOIN_AGG_SCRIPT, day=0)


@pytest.fixture(scope="session")
def simple_job() -> JobInstance:
    return JobInstance("j-simple", "t-simple", "simple", SIMPLE_SCRIPT, day=0)


@pytest.fixture(scope="session")
def copy_job() -> JobInstance:
    return JobInstance("j-copy", "t-copy", "copy", COPY_SCRIPT, day=0)


@pytest.fixture(scope="session")
def tiny_config() -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=42),
        workload=WorkloadConfig(num_templates=16, num_tables=10),
    )


@pytest.fixture(scope="session")
def tiny_workload(tiny_config) -> Workload:
    return build_workload(tiny_config)


@pytest.fixture(scope="session")
def tiny_engine(tiny_workload, tiny_config) -> ScopeEngine:
    return ScopeEngine(tiny_workload.catalog, tiny_config, tiny_workload.registry)
