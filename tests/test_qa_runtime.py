"""Runtime lock-order race detector: unit tests + serving stress harness.

The unit half proves the tracer's mechanics on synthetic locks: edge
recording, reentrant-RLock transparency, cycle detection across threads,
and the locks-held-across-``map_jobs`` hazard hook.

The stress half is the acceptance harness: a 2-shard serving fleet with
obs enabled, instrumented end to end via
:func:`repro.qa.auto_instrument_constructors`, driven through threaded
submission, a mid-stream grow/shrink resize, maintenance windows, and a
journal crash-recovery replay — asserting the global lock-order graph
stays acyclic, no lock is ever held across a fan-out, and
``DayReport.fingerprint()`` / ``CacheStats.core()`` are byte-identical
with instrumentation on and off.
"""

from __future__ import annotations

import dataclasses
import os
import threading

import pytest

from repro import QOAdvisor, QOAdvisorServer, ServingConfig, SimulationConfig
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ObsConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.parallel import ThreadedExecutor
from repro.qa import (
    LockRegistry,
    TracedLock,
    auto_instrument_constructors,
    instrument_locks,
)

# -- unit: TracedLock + LockRegistry ------------------------------------------


class _Box:
    """Minimal lock-bearing object for instrument_locks's fallback path."""

    def __init__(self) -> None:
        self._lock = threading.Lock()


def test_traced_lock_records_acquisitions_and_nesting_edges():
    registry = LockRegistry()
    a = TracedLock(threading.Lock(), registry, "A")
    b = TracedLock(threading.Lock(), registry, "B")
    with a:
        with b:
            pass
    assert registry.acquisitions == 2
    edges = registry.edges()
    assert [(e.held, e.acquired) for e in edges] == [("A", "B")]
    assert "test_qa_runtime" in edges[0].stack
    assert registry.cycles() == []
    registry.assert_clean()


def test_reentrant_rlock_adds_no_self_edge():
    registry = LockRegistry()
    lock = TracedLock(threading.RLock(), registry, "R")
    with lock:
        with lock:  # re-entry: legal, must not create R -> R
            pass
    assert registry.acquisitions == 1
    assert registry.edges() == []
    registry.assert_clean()


def test_cycle_detected_across_threads():
    registry = LockRegistry()
    a = TracedLock(threading.Lock(), registry, "A")
    b = TracedLock(threading.Lock(), registry, "B")

    def ab():
        with a:
            with b:
                pass

    def ba():
        with b:
            with a:
                pass

    # run serially on two threads: the *order* conflict is what matters,
    # no interleaving needed to prove the hazard
    for fn in (ab, ba):
        thread = threading.Thread(target=fn)
        thread.start()
        thread.join()
    cycles = registry.cycles()
    assert cycles and set(cycles[0]) == {"A", "B"}
    with pytest.raises(AssertionError, match="lock-order cycle"):
        registry.assert_clean()


def test_same_display_name_on_two_instances_shares_a_node():
    # two shards' service locks in mirrored order must still collide
    registry = LockRegistry()
    a1 = TracedLock(threading.Lock(), registry, "Svc._lock")
    a2 = TracedLock(threading.Lock(), registry, "Svc._lock")
    other = TracedLock(threading.Lock(), registry, "Reg._lock")
    with a1:
        with other:
            pass
    with other:
        with a2:
            pass
    assert len(registry.cycles()) == 1


def test_map_jobs_hazard_flagged_only_when_shared_lock_held():
    registry = LockRegistry()
    box = _Box()
    instrument_locks(box, registry=registry)
    assert isinstance(box._lock, TracedLock)
    # another thread uses the lock too: holding it across a fan-out is a
    # genuine deadlock hazard
    def touch():
        with box._lock:
            pass

    toucher = threading.Thread(target=touch)
    toucher.start()
    toucher.join()
    executor = ThreadedExecutor(workers=2)
    try:
        executor.map_jobs(lambda x: x + 1, [1, 2, 3])
        assert registry.fanout_events() == []  # no lock held: clean
        with box._lock:
            executor.map_jobs(lambda x: x + 1, [1, 2, 3])
        hazards = registry.hazards()
        assert len(hazards) == 1
        assert hazards[0].locks == ("_Box._lock",)
        assert hazards[0].backend == "thread"
        with pytest.raises(AssertionError, match="held across"):
            registry.assert_clean()
    finally:
        executor.close()
        registry.unwatch_map_jobs()


def test_map_jobs_event_with_coordinator_private_lock_is_not_a_hazard():
    # a lock only the fanning-out thread ever touches (the maintenance
    # window lock pattern) is recorded as an event but not reported
    registry = LockRegistry()
    box = _Box()
    instrument_locks(box, registry=registry)
    executor = ThreadedExecutor(workers=2)
    try:
        with box._lock:
            executor.map_jobs(lambda x: x + 1, [1, 2, 3])
        assert len(registry.fanout_events()) == 1
        assert registry.hazards() == []
        registry.assert_clean()
    finally:
        executor.close()
        registry.unwatch_map_jobs()


def test_instrument_locks_is_idempotent():
    registry = LockRegistry()
    box = _Box()
    instrument_locks(box, registry=registry)
    wrapped = box._lock
    instrument_locks(box, registry=registry)
    assert box._lock is wrapped  # not double-wrapped
    registry.unwatch_map_jobs()


# -- stress: instrumented 2-shard fleet ---------------------------------------


def _config(workers: int = 2, shards: int = 2, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards),
        obs=ObsConfig(enabled=True),
    )


def _submit_threaded(server: QOAdvisorServer, chunk) -> None:
    threads = [
        threading.Thread(target=server.submit, args=(job,)) for job in chunk
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


@pytest.mark.skipif(
    os.environ.get("REPRO_QA_LOCKS") == "1",
    reason="the session-wide conftest tracer already owns the constructor "
    "patch; this test's private registry would observe nothing through it",
)
def test_stress_fleet_acyclic_lock_order_and_fingerprint_parity(tmp_path):
    """Submit / resize / maintenance / journal replay under full lock
    instrumentation: acyclic order graph, zero fan-out hazards, and
    byte-identical reports versus the uninstrumented run."""
    # the uninstrumented references
    batch = QOAdvisor(_config())
    baseline = batch.run_day(0)
    batch.close()

    registry = LockRegistry()
    undo = auto_instrument_constructors(registry)
    try:
        server = QOAdvisorServer(
            config=_config(),
            serving=ServingConfig(workers_per_shard=2),
            journal=tmp_path / "wal.jsonl",
        )
        # constructor patching reached the whole object graph
        assert isinstance(server._failover_lock, TracedLock)
        assert isinstance(server.scheduler._lock, TracedLock)
        server.start()
        jobs = server.advisor.workload.jobs_for_day(0)
        third = max(1, len(jobs) // 3)

        _submit_threaded(server, jobs[:third])
        server.drain(timeout=120.0)
        added = server.add_shard()  # 2 -> 3 mid-stream
        assert added == 2
        _submit_threaded(server, jobs[third : 2 * third])
        server.drain(timeout=120.0)
        requeued = server.retire_shard(1)  # 3 -> 2, drained: nothing waiting
        assert requeued == 0
        _submit_threaded(server, jobs[2 * third :])
        server.drain(timeout=120.0)
        report = server.run_maintenance(0)
        server.shutdown()

        # crash-recovery replay on a fresh (also instrumented) server
        revived = QOAdvisorServer(
            config=_config(),
            serving=ServingConfig(workers_per_shard=2),
            journal=tmp_path / "wal.jsonl",
        )
        recovery = revived.recover()
        assert recovery.fingerprints_verified == 1
        revived.shutdown()
    finally:
        undo()

    # the detector saw real traffic and found nothing
    assert registry.acquisitions > 1000
    assert registry.cycles() == []
    assert registry.hazards() == []
    registry.assert_clean()

    # instrumentation is observationally transparent: byte-identical
    # fingerprint and core cache accounting versus the uninstrumented
    # batch day (mqo_preexplored is schedule-shaped, as in test_elastic)
    assert report.fingerprint() == baseline.fingerprint()
    assert dataclasses.replace(
        report.cache_stats, mqo_preexplored=0
    ).core() == dataclasses.replace(baseline.cache_stats, mqo_preexplored=0).core()


@pytest.mark.skipif(
    os.environ.get("REPRO_QA_LOCKS") == "1",
    reason="the session-wide conftest tracer keeps constructors patched",
)
def test_auto_instrument_undo_restores_constructors():
    registry = LockRegistry()
    undo = auto_instrument_constructors(registry)
    undo()
    advisor = QOAdvisor(_config(workers=1, shards=1))
    assert not isinstance(
        advisor.engine.compilation._lock, TracedLock
    )
    advisor.close()
