"""Write-ahead ticket journal: record, replay, crash recovery.

The contracts under test:

* **journal format** — appended records round-trip; a torn final line
  (the signature of a crash mid-append) is dropped, corruption anywhere
  else raises :class:`JournalError`;
* **crash recovery** — a server killed mid-day and rebuilt from its
  journal reconstructs the day accumulators and the pending maintenance
  window byte-identically: the replayed day-0 window reproduces the
  journaled ``DayReport.fingerprint()`` (verified *during* replay), and
  finishing the interrupted day produces the same fingerprint as the
  uninterrupted run;
* **non-recomputable events replay verbatim** — SLO sheds (wall-clock
  driven) and Personalizer mode switches are re-applied as recorded,
  never re-decided.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import QOAdvisorServer, ServingConfig, SimulationConfig, TicketJournal
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.serving import JournalError, QueueFull


def _config(shards: int = 2, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=1, backend="thread"),
        sharding=ShardingConfig(shards=shards),
    )


def _serving(**overrides) -> ServingConfig:
    return ServingConfig(workers_per_shard=0, **overrides)


# -- the journal file ---------------------------------------------------------


def test_journal_appends_and_reads_back(tmp_path):
    path = tmp_path / "wal.jsonl"
    with TicketJournal(path) as journal:
        journal.append({"t": "admit", "seq": 1, "day": 0, "job": "a", "template": "t"})
        journal.append({"t": "done", "seq": 1, "day": 0, "failed": False})
        assert [r["t"] for r in journal.records()] == ["admit", "done"]


def test_journal_drops_a_torn_tail_but_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "wal.jsonl"
    journal = TicketJournal(path)
    journal.append({"t": "admit", "seq": 1, "day": 0, "job": "a", "template": "t"})
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t":"done","seq":1,"fail')  # crash mid-append
    survivor = TicketJournal(path)
    assert [r["t"] for r in survivor.records()] == ["admit"]
    survivor.close()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('not json at all\n{"t":"admit","seq":1,"day":0,"job":"a"}\n')
    corrupt = TicketJournal(path)
    with pytest.raises(JournalError, match="line 1"):
        corrupt.records()
    corrupt.close()


def test_reopening_a_torn_journal_repairs_the_tail_before_appending(tmp_path):
    """Regression: appending to a journal whose last line was torn by a
    crash must not merge the new record onto the torn tail — the reopen
    truncates the unacknowledged fragment first."""
    path = tmp_path / "wal.jsonl"
    journal = TicketJournal(path)
    journal.append({"t": "admit", "seq": 1, "day": 0, "job": "a", "template": "t"})
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t":"done","seq":1,"fail')  # crash mid-append
    reopened = TicketJournal(path)
    reopened.append({"t": "done", "seq": 1, "day": 0, "failed": False})
    records = reopened.records()
    assert [r["t"] for r in records] == ["admit", "done"]  # no merged garbage
    reopened.close()


def test_recover_requires_a_journal_and_a_fresh_server(tmp_path):
    bare = QOAdvisorServer(config=_config(), serving=_serving())
    with pytest.raises(ValueError, match="journal"):
        bare.recover()
    bare.shutdown()
    path = tmp_path / "wal.jsonl"
    used = QOAdvisorServer(config=_config(), serving=_serving(), journal=path)
    used.start()
    used.submit(used.advisor.workload.jobs_for_day(0)[0])
    with pytest.raises(RuntimeError, match="fresh"):
        used.recover()
    used.shutdown()


# -- crash recovery -----------------------------------------------------------


def test_server_killed_mid_day_recovers_to_identical_fingerprints(tmp_path):
    """The acceptance contract: kill mid-day, restart from journal, finish
    the day — every fingerprint matches the uninterrupted run."""
    # the uninterrupted reference
    reference = QOAdvisorServer(config=_config(), serving=_serving())
    expected = [reference.stream_day(0), reference.stream_day(1)]
    reference.shutdown()

    # the journaled run, killed midway through day 1
    path = tmp_path / "wal.jsonl"
    doomed = QOAdvisorServer(config=_config(), serving=_serving(), journal=path)
    doomed.stream_day(0)
    day1_jobs = doomed.advisor.workload.jobs_for_day(1)
    half = len(day1_jobs) // 2
    assert half > 0
    for job in day1_jobs[:half]:
        doomed.submit(job)
    # crash: no drain, no maintenance, no shutdown — the process just dies

    # the restarted server: same config/seed, fresh state, replayed journal
    revived = QOAdvisorServer(config=_config(), serving=_serving(), journal=path)
    recovery = revived.recover()
    assert recovery.windows == 1
    assert recovery.fingerprints_verified == 1  # day 0 re-proved mid-replay
    assert recovery.admitted == len(expected[0].production_runs) + len(
        expected[0].failed_jobs
    ) + half
    assert recovery.in_flight == 0  # the inline schedule completes at submit
    # the pending maintenance window was reconstructed
    assert revived.scheduler.open_days() == [1]
    assert revived.scheduler.pending(1) == half
    assert revived.advisor.reports[0].fingerprint() == expected[0].fingerprint()
    assert revived.sis.current_version == reference.sis.current_version

    # finish the interrupted day and prove byte-parity end to end
    revived.start()
    for job in day1_jobs[half:]:
        revived.submit(job)
    revived.drain(timeout=60.0)
    report = revived.run_maintenance(1)
    assert report.fingerprint() == expected[1].fingerprint()
    assert report.cache_stats == expected[1].cache_stats
    revived.shutdown()


def test_threaded_journal_orders_admits_before_dones_and_recovers(tmp_path):
    """Regression: with worker threads, a ticket's completion raced its
    admit record into the journal; the write-ahead ordering (admit lands
    before the ticket is visible to any worker) makes threaded journals
    replayable."""
    path = tmp_path / "wal.jsonl"
    threaded = QOAdvisorServer(
        config=_config(), serving=ServingConfig(workers_per_shard=2), journal=path
    )
    expected = threaded.stream_day(0)
    seen: set[int] = set()
    for record in threaded.journal.records():
        if record["t"] == "admit":
            seen.add(record["seq"])
        elif record["t"] == "done":
            assert record["seq"] in seen  # never before its admit
    # crash without shutdown; the journal alone rebuilds the day
    revived = QOAdvisorServer(config=_config(), serving=_serving(), journal=path)
    recovery = revived.recover()
    assert recovery.windows == 1 and recovery.fingerprints_verified == 1
    assert revived.advisor.reports[0].fingerprint() == expected.fingerprint()
    revived.shutdown()
    threaded.shutdown()


def test_recovery_skips_rejected_admissions_and_keeps_seq_monotonic(tmp_path):
    """An admission that bounced on backpressure leaves an admit+reject
    pair; replay must not re-drive it, and post-recovery submissions must
    not reuse any replayed sequence number."""
    path = tmp_path / "wal.jsonl"
    tight = ServingConfig(workers_per_shard=1, queue_capacity=1, admission="reject")
    original = QOAdvisorServer(config=_config(shards=1), serving=tight, journal=path)
    jobs = original.advisor.workload.jobs_for_day(0)
    original.submit(jobs[0])  # fills the (unstarted) queue
    with pytest.raises(QueueFull):
        original.submit(jobs[1])
    kinds = [record["t"] for record in original.journal.records()]
    assert kinds == ["admit", "admit", "reject"]
    # crash without shutdown
    revived = QOAdvisorServer(config=_config(shards=1), serving=_serving(), journal=path)
    recovery = revived.recover()
    assert recovery.admitted == 1  # the rejected admission replays as a no-op
    assert revived.scheduler.pending(0) == 1
    revived.start()
    follow_up = revived.submit(jobs[2])
    assert follow_up.seq == 3  # past the rejected seq 2: no reuse
    revived.drain(timeout=60.0)
    report = revived.run_maintenance(0)
    assert len(report.production_runs) + len(report.failed_jobs) == 2
    revived.shutdown()
    original.shutdown()


def test_recovery_replays_sheds_and_mode_switches_verbatim(tmp_path):
    path = tmp_path / "wal.jsonl"
    # an SLO aggressive enough that every compile violates it
    strict = _serving(slo_p95_ms=1e-9, slo_min_samples=1, slo_policy="shed")
    original = QOAdvisorServer(config=_config(shards=1), serving=strict, journal=path)
    original.start()
    jobs = original.advisor.workload.jobs_for_day(0)
    original.submit(jobs[0])  # builds the latency sample that trips the SLO
    low = dataclasses.replace(jobs[1], metadata={"priority": "low"})
    shed_ticket = original.submit(low)
    assert shed_ticket.shed and shed_ticket.failed
    original.enable_learned_mode()
    original.drain(timeout=60.0)
    original.run_maintenance(0)
    # crash without shutdown

    # the revived server runs with the SLO *disabled*: sheds must come from
    # the journal, not from re-deciding wall-clock latency
    revived = QOAdvisorServer(
        config=_config(shards=1), serving=_serving(), journal=path
    )
    recovery = revived.recover()
    assert recovery.shed == 1
    assert recovery.mode_switches == 1
    assert recovery.windows == 1 and recovery.fingerprints_verified == 1
    assert revived.advisor.personalizer.mode == "learned"
    assert low.job_id in revived.advisor.reports[0].failed_jobs
    assert revived.stats().shards[0].shed == 1
    revived.shutdown()
    original.shutdown()


def test_recovery_detects_a_divergent_reconstruction(tmp_path):
    """A journal replayed against the wrong deployment (different seed)
    must fail loudly at the first window fingerprint, not silently rebuild
    a different history."""
    path = tmp_path / "wal.jsonl"
    original = QOAdvisorServer(config=_config(seed=555), serving=_serving(), journal=path)
    original.stream_day(0)
    # different seed: different jobs — replay cannot even resolve them
    stranger = QOAdvisorServer(config=_config(seed=777), serving=_serving(), journal=path)
    with pytest.raises(JournalError):
        stranger.recover()
    stranger.shutdown()
    original.shutdown()


def test_journal_path_via_serving_config(tmp_path):
    path = tmp_path / "wal.jsonl"
    serving = _serving(journal_path=str(path))
    server = QOAdvisorServer(config=_config(shards=1), serving=serving)
    assert server.journal is not None
    server.stream_day(0)
    kinds = {record["t"] for record in server.journal.records()}
    assert {"admit", "done", "window"} <= kinds
    server.shutdown()
