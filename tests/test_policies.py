"""Tests for the pluggable steering-policy layer (``repro.policies``).

Covers the refactor-parity lock (default policy byte-identical to the
pre-seam pipeline across worker counts and shard topologies), the three
shipped policies end-to-end, the counterfactual machinery over any
policy, off-policy estimator hardening, and the telemetry surfacing.
"""

import dataclasses

import numpy as np
import pytest

from repro import QOAdvisor, SimulationConfig
from repro.bandit.features import ActionFeatures, ContextFeatures
from repro.bandit.offpolicy import (
    LoggedEvent,
    dr_estimate,
    ips_estimate,
    snips_estimate,
)
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    PolicyConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.core.recommend import RecommendationTask, as_policy
from repro.errors import PersonalizerError, ValidationError
from repro.personalizer.service import PersonalizerService
from repro.policies import (
    BanditSteeringPolicy,
    PlanGuidedPolicy,
    SteeringPolicy,
    ValueModelPolicy,
    build_policy,
)
from repro.policies.plan_guided import plan_summary

# ---------------------------------------------------------------------------
# the refactor-parity lock
# ---------------------------------------------------------------------------

# Golden day reports captured on the pre-refactor pipeline (commit
# 7557f21, seed 555, 10 templates / 8 tables, deterministic flighting,
# simulate(0, 3, learned_after=1)).  The policy seam must keep the default
# configuration byte-identical to these — at any worker count and shard
# topology.  If a deliberate behavior change invalidates them, recapture
# on the commit introducing the change and say so in its message.
GOLDEN_FINGERPRINTS = [
    "3b03d01cbd8cae26b5015b7ca20e4122",
    "2cfb8272f6cbd69ff4b42319fbf5ae87",
    "b822419e84fd6bad9115d4d68cc314cc",
]
GOLDEN_CORES = [
    (20, 84, 0, 0, 84, 9, 2),
    (11, 18, 0, 84, 18, 9, 0),
    (11, 18, 0, 18, 18, 9, 2),
]


def _tiny_config(workers=1, shards=1, seed=555, policy=None):
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers),
        sharding=ShardingConfig(shards=shards),
        policy=policy or PolicyConfig(),
    )


def _simulate(config, days=3, learned_after=1):
    with QOAdvisor(config) as advisor:
        reports = advisor.simulate(0, days, learned_after=learned_after)
        return advisor, reports


@pytest.mark.parametrize(
    "workers,shards", [(1, 1), (4, 1), (1, 2)], ids=["serial", "workers4", "sharded"]
)
def test_default_policy_matches_pre_refactor_golden(workers, shards):
    _, reports = _simulate(_tiny_config(workers=workers, shards=shards))
    assert [r.fingerprint() for r in reports] == GOLDEN_FINGERPRINTS
    assert [r.cache_stats.core() for r in reports] == GOLDEN_CORES


def test_default_policy_is_the_bandit_and_personalizer_survives():
    advisor, reports = _simulate(_tiny_config())
    assert isinstance(advisor.policy, BanditSteeringPolicy)
    # the pre-seam API surface: advisor.personalizer is the raw service
    assert advisor.personalizer is advisor.policy.service
    assert advisor.personalizer.mode == "learned"
    assert reports[-1].policy_name == "bandit"
    assert reports[-1].policy_version == len(advisor.personalizer.versions)


def test_policy_telemetry_is_outside_the_fingerprint():
    _, reports = _simulate(_tiny_config())
    report = reports[-1]
    before = report.fingerprint()
    report.policy_name = "something_else"
    report.policy_version = 99
    assert report.fingerprint() == before


# ---------------------------------------------------------------------------
# the three policies end-to-end
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["bandit", "value_model", "plan_guided"])
def test_policy_runs_end_to_end_and_feeds_counterfactuals(name):
    config = _tiny_config(policy=PolicyConfig(name=name))
    advisor, reports = _simulate(config)
    policy = advisor.policy
    assert isinstance(policy, SteeringPolicy)
    assert reports[-1].policy_name == name
    assert reports[-1].policy_version == policy.model_version > 0
    log = policy.event_log
    assert log, "every policy must produce a counterfactual-ready log"
    # the off-policy machinery accepts any policy exposing action_probability
    estimates = {
        "ips": ips_estimate(log, policy),
        "snips": snips_estimate(log, policy),
        "dr": dr_estimate(log, policy, lambda context, action: 1.0),
    }
    for key, value in estimates.items():
        assert np.isfinite(value), (key, value)
    assert estimates["snips"] > 0.0


@pytest.mark.parametrize("name", ["value_model", "plan_guided"])
def test_learned_policies_are_deterministic_across_workers(name):
    fingerprints = []
    for workers in (1, 4):
        config = _tiny_config(workers=workers, policy=PolicyConfig(name=name))
        _, reports = _simulate(config)
        fingerprints.append([r.fingerprint() for r in reports])
    assert fingerprints[0] == fingerprints[1]


def test_plan_guided_policy_scores_from_the_plan_cache():
    # In uniform-logging mode the chosen actions depend only on the policy
    # RNG stream, so a run with plan peeks enabled and one with them
    # unavailable make identical decisions — if peeking were ever to
    # compile or touch a counter, the two cache accountings would diverge.
    results = []
    for bind_engine in (True, False):
        config = _tiny_config(policy=PolicyConfig(name="plan_guided"))
        with QOAdvisor(config) as advisor:
            if not bind_engine:
                advisor.policy.engine = None  # force the context-only path
            report = advisor.run_day(0)
            results.append(
                (report.fingerprint(), report.cache_stats.core(), advisor.policy)
            )
    (fp_peek, core_peek, with_peek), (fp_blind, core_blind, blind) = results
    assert with_peek.plan_feature_hits > 0  # plans were resident and read
    assert with_peek.plan_feature_misses == 0
    assert blind.plan_feature_hits == 0
    assert fp_peek == fp_blind
    assert core_peek == core_blind


def test_peek_job_result_is_counter_free():
    config = _tiny_config()
    with QOAdvisor(config) as advisor:
        job = advisor.workload.jobs_for_day(0)[0]
        assert advisor.engine.peek_job_result(job) is None  # cold: no compile
        before = advisor.engine.compilation.stats.snapshot()
        assert (advisor.engine.compilation.stats - before).core() == (
            0, 0, 0, 0, 0, 0, 0,
        )
        result = advisor.engine.compile_job(job)
        mid = advisor.engine.compilation.stats.snapshot()
        peeked = advisor.engine.peek_job_result(job)
        assert peeked is result
        assert (advisor.engine.compilation.stats - mid).core() == (
            0, 0, 0, 0, 0, 0, 0,
        )


# ---------------------------------------------------------------------------
# policy unit behavior
# ---------------------------------------------------------------------------


def _context(span=(3, 5), cost=100.0):
    return ContextFeatures(span=tuple(span), estimated_cost=cost)


def _actions():
    return [
        ActionFeatures(rule_id=None),
        ActionFeatures(rule_id=3, turn_on=False, category="transformation"),
        ActionFeatures(rule_id=5, turn_on=False, category="implementation"),
    ]


def test_bandit_policy_delegates_byte_identically():
    service_a = PersonalizerService(SimulationConfig().bandit, seed=9)
    service_b = PersonalizerService(SimulationConfig().bandit, seed=9)
    wrapped = BanditSteeringPolicy(service_b)
    for _ in range(5):
        raw = service_a.rank(_context(), _actions())
        via = wrapped.rank(_context(), _actions(), job=None)
        assert (raw.event_id, raw.index, raw.probability) == (
            via.event_id, via.index, via.probability,
        )
        service_a.reward(raw.event_id, 1.0)
        wrapped.observe(via.event_id, 1.0)
    assert wrapped.publish_version() == service_a.publish_version()
    assert wrapped.event_log == service_a.event_log


def test_value_model_learns_per_action_rewards():
    policy = ValueModelPolicy(epsilon=0.0, seed=1, mode="learned")
    actions = _actions()
    # teach it: action 1 pays 2.0, others pay 0.5 (via uniform exploration)
    policy.switch_mode("uniform_logging")
    for _ in range(60):
        response = policy.rank(_context(), actions)
        policy.observe(response.event_id, 2.0 if response.index == 1 else 0.5)
    policy.publish_version()  # refit cadence
    policy.switch_mode("learned")
    response = policy.rank(_context(), actions)
    assert response.index == 1
    assert response.probability == pytest.approx(1.0)  # epsilon 0, greedy
    assert policy.action_probability(_context(), actions, 1) == pytest.approx(1.0)
    assert policy.action_probability(_context(), actions, 0) == pytest.approx(0.0)


def test_value_model_snapshot_restore_roundtrip():
    policy = ValueModelPolicy(epsilon=0.1, seed=2)
    actions = _actions()
    for _ in range(30):
        response = policy.rank(_context(), actions)
        policy.observe(response.event_id, float(response.index))
    version = policy.publish_version()
    scores_at_publish = policy._scores(_context(), actions, None).tolist()
    for _ in range(30):
        response = policy.rank(_context(), actions)
        policy.observe(response.event_id, 2.0 - response.index)
    policy.publish_version()
    policy.restore_version(version)
    assert policy._scores(_context(), actions, None).tolist() == scores_at_publish
    with pytest.raises(PersonalizerError):
        policy.restore_version(999)


def test_plan_guided_falls_back_without_an_engine():
    policy = PlanGuidedPolicy(engine=None, epsilon=0.0, seed=3, mode="learned")
    actions = _actions()
    scores = policy._scores(_context(), actions, None)
    assert len(scores) == len(actions)
    response = policy.rank(_context(), actions)  # no job: context-only path
    policy.observe(response.event_id, 1.5)
    assert policy.updates == 1
    assert policy.event_log[0].reward == 1.5


def test_plan_summary_reads_plan_structure():
    config = _tiny_config()
    with QOAdvisor(config) as advisor:
        job = advisor.workload.jobs_for_day(0)[0]
        result = advisor.engine.compile_job(job)
        summary = plan_summary(result)
        assert summary["nodes"] >= 1
        assert summary["depth"] >= 1
        assert summary["est_cost"] == result.est_cost


def test_learned_policy_mode_and_event_guards():
    policy = ValueModelPolicy(seed=4)
    with pytest.raises(PersonalizerError):
        policy.switch_mode("bogus")
    with pytest.raises(PersonalizerError):
        policy.observe("no-such-event", 1.0)
    with pytest.raises(PersonalizerError):
        policy.rank(_context(), [])
    with pytest.raises(PersonalizerError):
        ValueModelPolicy(epsilon=1.5)


def test_build_policy_factory_and_wrapping():
    config = SimulationConfig()
    assert isinstance(build_policy(config), BanditSteeringPolicy)
    assert isinstance(
        build_policy(dataclasses.replace(config, policy=PolicyConfig("value_model"))),
        ValueModelPolicy,
    )
    plan = build_policy(
        dataclasses.replace(config, policy=PolicyConfig("plan_guided")), engine="E"
    )
    assert isinstance(plan, PlanGuidedPolicy) and plan.engine == "E"
    with pytest.raises(ValidationError):
        build_policy(dataclasses.replace(config, policy=PolicyConfig("nope")))
    # pre-seam call sites passing a raw service keep working
    from repro.scope.optimizer.rules.base import default_registry

    service = PersonalizerService(config.bandit, seed=5)
    task = RecommendationTask(service, default_registry())
    assert isinstance(task.policy, BanditSteeringPolicy)
    assert task.personalizer is service
    assert as_policy(task.policy) is task.policy  # idempotent


# ---------------------------------------------------------------------------
# estimator hardening
# ---------------------------------------------------------------------------


def _event(probability=0.5, actions=None, chosen=0, reward=1.0):
    acts = _actions() if actions is None else actions
    return LoggedEvent(
        context=_context(),
        actions=tuple(acts),
        chosen=chosen,
        probability=probability,
        reward=reward,
    )


class _UniformTestPolicy:
    def action_probability(self, context, actions, index, scorer=None):
        return 1.0 / len(actions)


@pytest.mark.parametrize(
    "estimate",
    [
        ips_estimate,
        snips_estimate,
        lambda events, policy: dr_estimate(events, policy, lambda c, a: 0.0),
    ],
    ids=["ips", "snips", "dr"],
)
def test_estimators_survive_degenerate_logs(estimate):
    policy = _UniformTestPolicy()
    assert estimate([], policy) == 0.0
    # zero / negative propensity rows are skipped, not divided by
    assert estimate([_event(probability=0.0)], policy) == 0.0
    assert estimate([_event(probability=-1.0)], policy) == 0.0
    # empty action sets and out-of-range chosen indices are skipped too
    assert estimate([_event(actions=[])], policy) == 0.0
    assert estimate([_event(chosen=17)], policy) == 0.0
    # a degenerate row must not poison the usable ones
    mixed = [_event(probability=0.0), _event(probability=1.0 / 3.0, reward=1.5)]
    clean = [_event(probability=1.0 / 3.0, reward=1.5)]
    assert estimate(mixed, policy) == pytest.approx(estimate(clean, policy))
    assert estimate(clean, policy) == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# serving surface
# ---------------------------------------------------------------------------


def test_server_stats_surface_the_active_policy():
    from repro.serving import QOAdvisorServer

    config = dataclasses.replace(_tiny_config(), policy=PolicyConfig("value_model"))
    server = QOAdvisorServer(config=config)
    try:
        stats = server.stats()
        assert stats.policy_name == "value_model"
        assert stats.policy_version == server.advisor.policy.model_version
        assert "policy value_model v" in stats.render()
    finally:
        server.shutdown()
