"""Static-analysis suite tests: seeded fixtures, suppressions, baseline, CLI.

The fixture modules under ``tests/qa_fixtures/`` each plant one rule's
violation at a known line; the tests assert the analyzers report exactly
those (rule ID + file:line), that the triage machinery (``# qa:``
comments, the baseline) behaves, and that the real tree passes the CI
gate with the checked-in baseline applied.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.qa import Baseline, Finding, SourceFile
from repro.qa import cli as qa_cli
from repro.qa import determinism, locks
from repro.qa.findings import (
    RULE_BARE_SUPPRESSION,
    RULE_HASH,
    RULE_ID,
    RULE_RNG,
    RULE_SETITER,
    RULE_TIME,
    RULE_UNGUARDED,
    RULE_UNKNOWN_SUPPRESSION,
)

FIXTURES = Path(__file__).parent / "qa_fixtures"
REPRO_ROOT = Path(__file__).parent.parent / "src" / "repro"


def _scan(name: str) -> list[Finding]:
    source = SourceFile(FIXTURES / name, FIXTURES)
    return sorted(
        determinism.scan_file(source) + locks.scan_file(source),
        key=lambda f: (f.line, f.rule),
    )


def _anchors(findings: list[Finding]) -> list[tuple[str, str, int]]:
    return [(f.rule, f.path, f.line) for f in findings]


# -- one seeded violation per rule, exact anchor -------------------------------


def test_fixture_builtin_hash():
    assert _anchors(_scan("det_hash.py")) == [(RULE_HASH, "det_hash.py", 5)]


def test_fixture_id_ordering():
    assert _anchors(_scan("det_id.py")) == [(RULE_ID, "det_id.py", 5)]


def test_fixture_rng_construction():
    assert _anchors(_scan("det_rng.py")) == [
        (RULE_RNG, "det_rng.py", 3),
        (RULE_RNG, "det_rng.py", 9),
        (RULE_RNG, "det_rng.py", 10),
    ]


def test_fixture_wallclock():
    # line 7 flagged; line 11's read is suppressed with a reasoned comment
    assert _anchors(_scan("det_time.py")) == [(RULE_TIME, "det_time.py", 7)]


def test_fixture_set_iteration():
    # the iterating loop is flagged; sum(ids) is order-insensitive and clean
    assert _anchors(_scan("det_setiter.py")) == [
        (RULE_SETITER, "det_setiter.py", 6)
    ]


def test_fixture_unguarded_access():
    findings = _scan("lock_unguarded.py")
    assert _anchors(findings) == [(RULE_UNGUARDED, "lock_unguarded.py", 16)]
    assert "Counter._count" in findings[0].message
    assert "self._lock" in findings[0].message


def test_fixture_bare_suppression_is_a_finding_and_suppresses_nothing():
    findings = _scan("sup_bare.py")
    assert _anchors(findings) == [
        (RULE_HASH, "sup_bare.py", 5),
        (RULE_BARE_SUPPRESSION, "sup_bare.py", 5),
    ]


def test_fixture_unknown_suppression_tag():
    findings = _scan("sup_unknown.py")
    assert _anchors(findings) == [
        (RULE_UNKNOWN_SUPPRESSION, "sup_unknown.py", 5)
    ]
    assert "totally-fine" in findings[0].message


# -- suppression mechanics -----------------------------------------------------


def test_suppression_applies_same_line_and_line_above(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "def f(x):\n"
        "    a = hash(x)  # qa: hash-ok same-line reason\n"
        "    # qa: hash-ok line-above reason\n"
        "    b = hash(x)\n"
        "    c = hash(x)\n",
        encoding="utf-8",
    )
    findings = determinism.scan_file(SourceFile(module, tmp_path))
    assert _anchors(findings) == [(RULE_HASH, "mod.py", 5)]


def test_trailing_comment_does_not_suppress_next_line(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "def f(x):\n"
        "    a = 1  # qa: hash-ok reason attached to an unrelated line\n"
        "    b = hash(x)\n",
        encoding="utf-8",
    )
    findings = determinism.scan_file(SourceFile(module, tmp_path))
    assert _anchors(findings) == [(RULE_HASH, "mod.py", 3)]


def test_suppression_inside_string_literal_is_inert(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        'TEXT = "# qa: hash-ok not a comment"\n'
        "def f(x):\n"
        "    return hash(x)\n",
        encoding="utf-8",
    )
    findings = determinism.scan_file(SourceFile(module, tmp_path))
    assert _anchors(findings) == [(RULE_HASH, "mod.py", 3)]


def test_wrong_tag_does_not_suppress_other_rule(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "def f(x):\n"
        "    return hash(x)  # qa: wallclock-ok wrong tag for this rule\n",
        encoding="utf-8",
    )
    findings = determinism.scan_file(SourceFile(module, tmp_path))
    assert _anchors(findings) == [(RULE_HASH, "mod.py", 2)]


def test_def_line_suppression_covers_lock_helper(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._x = 0\n"
        "    def set(self):\n"
        "        with self._lock:\n"
        "            self._x = 1\n"
        "    def peek(self):  # qa: unlocked-ok monitoring read, staleness fine\n"
        "        return self._x\n",
        encoding="utf-8",
    )
    findings = locks.scan_file(SourceFile(module, tmp_path))
    assert findings == []


# -- baseline mechanics --------------------------------------------------------


def test_baseline_requires_reasons(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {"entries": [{"rule": RULE_HASH, "path": "a.py", "context": "x", "reason": " "}]}
        ),
        encoding="utf-8",
    )
    with pytest.raises(ValueError, match="no reason"):
        Baseline.load(path)


def test_baseline_matches_context_not_line_number():
    from repro.qa import BaselineEntry

    finding_moved = Finding(RULE_HASH, "mod.py", 99, "msg", context="h = hash(x)")
    baseline = Baseline.load(Path("/nonexistent"))  # empty
    assert not baseline.covers(finding_moved)
    baseline.entries.append(
        BaselineEntry(RULE_HASH, "mod.py", "h = hash(x)", "accepted legacy site")
    )
    assert baseline.covers(finding_moved)  # line number irrelevant
    fresh, accepted = baseline.split([finding_moved])
    assert fresh == [] and accepted == [finding_moved]


# -- the real tree -------------------------------------------------------------


def test_real_tree_determinism_clean():
    assert determinism.scan_tree(REPRO_ROOT) == []


def test_real_tree_locks_fully_baselined():
    baseline = Baseline.load(REPRO_ROOT / "qa" / "baseline.json")
    fresh, _ = baseline.split(locks.scan_tree(REPRO_ROOT))
    assert fresh == []


def test_checked_in_baseline_has_no_stale_entries():
    baseline = Baseline.load(REPRO_ROOT / "qa" / "baseline.json")
    live = {
        (f.rule, f.path, f.context)
        for f in determinism.scan_tree(REPRO_ROOT) + locks.scan_tree(REPRO_ROOT)
    }
    stale = [e for e in baseline.entries if e.key() not in live]
    assert stale == []


# -- CLI -----------------------------------------------------------------------


def test_cli_strict_clean_on_real_tree(capsys):
    assert qa_cli.main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 new" in out


def test_cli_fails_on_seeded_fixtures(capsys):
    assert qa_cli.main(["--root", str(FIXTURES), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    for rule in (RULE_HASH, RULE_ID, RULE_RNG, RULE_TIME, RULE_SETITER,
                 RULE_UNGUARDED, RULE_BARE_SUPPRESSION, RULE_UNKNOWN_SUPPRESSION):
        assert rule in out


def test_cli_rejects_missing_root(capsys):
    assert qa_cli.main(["--root", "/no/such/dir"]) == 2
