"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bandit.features import ActionFeatures, ContextFeatures, joint_features
from repro.rng import keyed_rng, stable_hash
from repro.scope.language import ast
from repro.scope.optimizer.rules.base import (
    RuleConfiguration,
    RuleFlip,
    RuleSignature,
    default_registry,
)
from repro.scope.types import Column, DataType, Schema
from repro.sis.hints import HintEntry, parse_hint_file, render_hint_file

_REGISTRY = default_registry()
_SIZE = len(_REGISTRY)


@given(st.integers(min_value=0, max_value=(1 << _SIZE) - 1), st.integers(0, _SIZE - 1))
def test_flip_is_involution(bits, rule_id):
    config = RuleConfiguration(bits, _SIZE)
    assert config.with_flip(rule_id).with_flip(rule_id) == config


@given(st.integers(min_value=0, max_value=(1 << _SIZE) - 1))
def test_bitstring_roundtrip(bits):
    config = RuleConfiguration(bits, _SIZE)
    text = config.as_bitstring()
    assert len(text) == _SIZE
    rebuilt = sum(1 << i for i, ch in enumerate(text) if ch == "1")
    assert rebuilt == bits


@given(st.lists(st.integers(0, _SIZE - 1), unique=True))
def test_configuration_diff_matches_flips(rule_ids):
    config = _REGISTRY.default_configuration()
    flipped = config.with_flips(rule_ids)
    assert sorted(flipped.diff(config)) == sorted(rule_ids)


@given(st.sets(st.integers(0, _SIZE - 1)))
def test_signature_membership(ids):
    signature = RuleSignature.from_ids(ids, _SIZE)
    for rule_id in range(_SIZE):
        assert (rule_id in signature) == (rule_id in ids)


_names = st.text(alphabet="abcdefg", min_size=1, max_size=4)


@given(st.lists(_names, unique=True, min_size=1, max_size=6))
def test_schema_project_identity(names):
    schema = Schema([Column(n, DataType.INT) for n in names])
    assert schema.project(list(names)).names == tuple(names)


@given(
    st.lists(_names, unique=True, min_size=1, max_size=4),
    st.lists(_names, unique=True, min_size=1, max_size=4),
)
def test_schema_concat_width_additive(left_names, right_names):
    left = Schema([Column(n, DataType.INT) for n in left_names])
    right = Schema([Column(n, DataType.LONG) for n in right_names])
    joined = left.concat(right)
    assert len(joined) == len(left) + len(right)
    assert joined.row_width == left.row_width + right.row_width


_literals = st.integers(-100, 100).map(lambda v: ast.Literal(v, DataType.LONG))
_columns = _names.map(ast.ColumnRef)
_comparisons = st.tuples(_columns, _literals).map(
    lambda pair: ast.BinaryOp("==", pair[0], pair[1])
)


@given(st.lists(_comparisons, min_size=1, max_size=6))
def test_conjunction_split_roundtrip(conjuncts):
    rebuilt = ast.split_conjuncts(ast.make_conjunction(conjuncts))
    assert rebuilt == conjuncts


@given(st.lists(_comparisons, min_size=1, max_size=4))
def test_predicate_sql_is_parseable_shape(conjuncts):
    text = ast.make_conjunction(conjuncts).sql()
    assert text.count("(") == text.count(")")


@given(st.integers(), st.integers())
def test_stable_hash_is_stable_and_64bit(a, b):
    assert stable_hash(a, b) == stable_hash(a, b)
    assert 0 <= stable_hash(a, b) < (1 << 64)
    assert stable_hash(a, b) == stable_hash(a, b)


@given(st.integers(0, 2**32), st.text(max_size=8))
def test_keyed_rng_deterministic(seed, tag):
    a = keyed_rng(seed, tag).random()
    b = keyed_rng(seed, tag).random()
    assert a == b


@settings(max_examples=30)
@given(
    st.sets(st.integers(0, _SIZE - 1), min_size=0, max_size=8),
    st.integers(0, _SIZE - 1),
    st.booleans(),
)
def test_joint_features_deterministic(span, rule_id, turn_on):
    context = ContextFeatures(span=tuple(sorted(span)))
    action = ActionFeatures(rule_id=rule_id, turn_on=turn_on)
    first = joint_features(context, action, bits=16)
    second = joint_features(context, action, bits=16)
    assert first.values == second.values


_off_rules = _REGISTRY.ids_in_category(
    __import__("repro.scope.optimizer.rules.base", fromlist=["RuleCategory"]).RuleCategory.OFF_BY_DEFAULT
)


@settings(max_examples=30)
@given(st.lists(st.sampled_from(_off_rules), unique=True, min_size=1, max_size=4))
def test_hint_file_roundtrip(rule_ids):
    entries = [
        HintEntry(f"T{i:04d}", RuleFlip(rule_id, True))
        for i, rule_id in enumerate(rule_ids)
    ]
    assert parse_hint_file(render_hint_file(entries, day=1)) == entries
