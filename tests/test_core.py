"""QO-Advisor core tests: spans, tasks, pipeline wiring."""

import pytest

from repro.core.features import FeatureGenerationTask, JobFeatures
from repro.core.recommend import RecommendationTask, actions_for_span
from repro.core.recompile import CostOutcome, RecompilationTask, flight_candidates
from repro.core.spans import SpanComputer
from repro.core.validate import ValidationModel, ValidationTask
from repro.core.hintgen import HintGenerationTask
from repro.personalizer.service import PersonalizerService
from repro.scope.optimizer.rules.base import RuleCategory
from repro.scope.telemetry.view import WorkloadView, build_view_row
from repro.sis.service import SISService

from tests.conftest import COPY_SCRIPT, JOIN_AGG_SCRIPT


@pytest.fixture(scope="module")
def spans(engine):
    return SpanComputer(engine)


def test_span_of_copy_job_is_empty(engine, spans):
    assert spans.compute(COPY_SCRIPT) == frozenset()


def test_span_of_join_agg_job(engine, spans):
    span = spans.compute(JOIN_AGG_SCRIPT)
    names = {engine.registry.rule(r).name for r in span}
    assert "JoinResidualToKeys" in names
    assert "LocalGlobalAggregation" in names  # discovered via off-rule probe
    # required rules never enter a span
    for rule_id in span:
        assert engine.registry.rule(rule_id).category != RuleCategory.REQUIRED


def test_span_cache_by_template(engine, spans):
    first = spans.span_for_template("tX", JOIN_AGG_SCRIPT)
    count = spans.recompilations
    second = spans.span_for_template("tX", JOIN_AGG_SCRIPT)
    assert first == second
    assert spans.recompilations == count  # cached: no recompiles


def test_span_of_uncompilable_script_is_empty(engine, spans):
    assert spans.compute("garbage !!") == frozenset()


@pytest.fixture(scope="module")
def features(engine, spans, join_agg_job, copy_job):
    view = WorkloadView(day=0)
    jobs = {}
    for job in (join_agg_job, copy_job):
        result = engine.compile_job(job, use_hints=False)
        metrics = engine.execute(result, job.run_key())
        view.add(build_view_row(job, result, metrics))
        jobs[job.job_id] = job
    return FeatureGenerationTask(spans).run(view, jobs)


def test_feature_generation_marks_steerable(features):
    by_id = {f.job.job_id: f for f in features}
    assert by_id["j-agg"].steerable
    assert not by_id["j-copy"].steerable


def test_context_includes_span_and_numerics(features):
    steerable = next(f for f in features if f.steerable)
    context = steerable.context()
    assert context.span == tuple(sorted(steerable.span))
    assert context.estimated_cost > 0


def test_actions_for_span_size(engine, features):
    steerable = next(f for f in features if f.steerable)
    actions = actions_for_span(steerable.span, engine.registry, engine.default_config)
    assert len(actions) == 1 + len(steerable.span)
    assert actions[0].is_noop
    directions = {
        a.rule_id: a.turn_on for a in actions if a.rule_id is not None
    }
    for rule_id, turn_on in directions.items():
        assert turn_on == (not engine.default_config.is_enabled(rule_id))


def test_recommendation_task_skips_empty_spans(engine, features):
    personalizer = PersonalizerService(seed=9)
    recommendations = RecommendationTask(personalizer, engine.registry).run(features)
    assert len(recommendations) == 1  # only the steerable job


def test_recompilation_rewards_and_outcomes(engine, features):
    personalizer = PersonalizerService(seed=10)
    task = RecompilationTask(engine)
    lga = engine.registry.by_name("LocalGlobalAggregation").rule_id
    # force the recommendation to the known-good flip
    from repro.core.recommend import Recommendation
    from repro.scope.optimizer.rules.base import RuleFlip

    steerable = next(f for f in features if f.steerable)
    rec = Recommendation(steerable, RuleFlip(lga, True), "evt-x", 0.1)
    outcome = task.evaluate(rec)
    assert outcome.outcome is CostOutcome.LOWER
    assert 1.0 < outcome.reward <= 2.0
    assert outcome.est_cost_delta < 0


def test_recompilation_noop_outcome(engine, features):
    from repro.core.recommend import Recommendation

    steerable = next(f for f in features if f.steerable)
    outcome = RecompilationTask(engine).evaluate(
        Recommendation(steerable, None, "evt-y", 0.5)
    )
    assert outcome.outcome is CostOutcome.NOOP
    assert outcome.reward == 1.0


def test_recompilation_failure_outcome(engine, features):
    from repro.core.recommend import Recommendation
    from repro.scope.optimizer.rules.base import RuleFlip

    steerable = next(f for f in features if f.steerable)
    bad = RuleFlip(engine.registry.by_name("HashAggregateImpl").rule_id, False)
    outcome = RecompilationTask(engine).evaluate(
        Recommendation(steerable, bad, "evt-z", 0.5)
    )
    assert outcome.outcome is CostOutcome.FAILURE
    assert outcome.reward == 0.0


def test_flight_candidates_filters_lower_only(engine, features):
    from repro.core.recommend import Recommendation
    from repro.scope.optimizer.rules.base import RuleFlip

    steerable = next(f for f in features if f.steerable)
    task = RecompilationTask(engine)
    lga = engine.registry.by_name("LocalGlobalAggregation").rule_id
    good = task.evaluate(Recommendation(steerable, RuleFlip(lga, True), "e1", 0.1))
    noop = task.evaluate(Recommendation(steerable, None, "e2", 0.1))
    assert flight_candidates([good, noop]) == [good]


def test_validation_model_requires_training():
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        ValidationModel().predict(None)  # type: ignore[arg-type]


def test_hint_generation_caps_and_merges(engine):
    from repro.core.validate import ValidatedFlip
    from repro.scope.optimizer.rules.base import RuleFlip

    sis = SISService(engine.registry)
    task = HintGenerationTask(sis, engine.registry, max_hints_per_day=1)
    lga = engine.registry.by_name("LocalGlobalAggregation").rule_id
    validated = [
        ValidatedFlip("T1", RuleFlip(lga, True), -0.3, None),
        ValidatedFlip("T2", RuleFlip(lga, True), -0.2, None),
    ]
    version = task.run(validated, day=1)
    assert version is not None and len(sis.active_hints()) == 1
    assert "T1" in sis.active_hints()  # best predicted delta wins the cap
    # next day merges
    task2 = HintGenerationTask(sis, engine.registry, max_hints_per_day=5)
    task2.run([ValidatedFlip("T3", RuleFlip(lga, True), -0.5, None)], day=2)
    assert set(sis.active_hints()) == {"T1", "T3"}


def test_hint_generation_returns_none_when_empty(engine):
    sis = SISService(engine.registry)
    assert HintGenerationTask(sis, engine.registry).run([], day=0) is None
