"""Sharded multi-cluster layer: routing, shared SIS, byte-identity.

The contract under test: a sharded run — jobs stable-hash partitioned
across N ScopeEngine shards, each with its own plan cache and catalog
replica, hints flowing through one shared SIS — produces a
``DayReport.fingerprint()`` byte-identical to the single-shard serial run,
and its per-shard cache stats sum to exactly the single cache's counters.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import QOAdvisor, ShardedScopeCluster, ShardRouter, SimulationConfig
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.errors import ScopeError
from repro.scope.cache import CacheStats
from repro.scope.engine import ScopeEngine
from repro.sis.hints import HintEntry
from repro.sis.service import SISService
from repro.scope.optimizer.rules.base import RuleFlip
from repro.workload.generator import build_workload


def _config(workers: int = 1, shards: int = 1, seed: int = 555) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards),
    )


# -- the router ---------------------------------------------------------------


def test_router_is_stable_and_in_range():
    router = ShardRouter(4)
    again = ShardRouter(4)
    for index in range(200):
        template = f"tmpl-{index:04d}"
        shard = router.shard_for(template)
        assert 0 <= shard < 4
        # pure function of the template id: stable across router instances
        assert shard == again.shard_for(template)


def test_router_spreads_templates_across_all_shards():
    router = ShardRouter(3)
    counts = [0, 0, 0]
    for index in range(300):
        counts[router.shard_for(f"tmpl-{index:04d}")] += 1
    assert all(count > 0 for count in counts)


def test_router_rejects_nonpositive_shard_count():
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_partition_preserves_order_and_template_affinity(tiny_workload):
    router = ShardRouter(3)
    jobs = tiny_workload.jobs_for_day(0)
    groups = router.partition(jobs)
    regrouped = [job for shard in sorted(groups) for job in groups[shard]]
    assert sorted(job.job_id for job in regrouped) == sorted(job.job_id for job in jobs)
    for shard, members in groups.items():
        # every instance of a template lands on that template's shard
        assert all(router.shard_for(job.template_id) == shard for job in members)
        # order within a shard follows submission order
        positions = [jobs.index(job) for job in members]
        assert positions == sorted(positions)


# -- cluster structure --------------------------------------------------------


def test_cluster_shards_own_independent_caches_and_catalogs():
    config = _config(shards=3)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    assert cluster.num_shards == 3
    services = {id(shard.compilation) for shard in cluster.shards}
    catalogs = {id(shard.catalog) for shard in cluster.shards}
    assert len(services) == 3 and len(catalogs) == 3
    assert all(shard.catalog is not workload.catalog for shard in cluster.shards)


def test_catalog_replicas_stay_in_sync_day_over_day():
    config = _config(shards=2)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    for day in (0, 3, 1):  # growth is absolute per day, any order works
        workload.jobs_for_day(day)
        for shard in cluster.shards:
            assert {t.name: t.row_count for t in shard.catalog} == {
                t.name: t.row_count for t in workload.catalog
            }


def test_sis_upload_broadcasts_invalidation_to_every_shard():
    config = _config(shards=3)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    sis = SISService(workload.registry)
    sis.attach(cluster)
    jobs = workload.jobs_for_day(0)
    for job in jobs:
        try:
            cluster.compile_job(job)
        except ScopeError:
            pass  # failures are memoized entries too; residency is the point
    assert any(len(shard.compilation.cache) > 0 for shard in cluster.shards)
    generations = [shard.compilation.generation for shard in cluster.shards]
    rule = workload.registry.by_name("LocalGlobalAggregation").rule_id
    sis.upload([HintEntry(jobs[0].template_id, RuleFlip(rule, True))], day=1)
    for shard, generation in zip(cluster.shards, generations):
        assert shard.compilation.generation == generation + 1
        assert len(shard.compilation.cache) == 0
    # ...and the shared lookup reaches every shard's compile path
    assert all(
        shard.hint_provider(jobs[0].template_id) == RuleFlip(rule, True)
        for shard in cluster.shards
    )


def test_cluster_compile_script_and_span_computer_work():
    """The facade covers the span computer's whole surface: routed
    per-template spans AND the template-less compile_script fallback."""
    from repro.core.spans import SpanComputer

    config = _config(shards=2)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    job = workload.jobs_for_day(0)[0]
    # template-less entry point routes by script hash, deterministically
    result = cluster.compilation.compile_script(job.script, cluster.default_config)
    again = cluster.compilation.compile_script(job.script, cluster.default_config)
    assert again is result  # same shard, served from its cache
    # direct compute() on a cluster (no template routing) must not crash
    spans = SpanComputer(cluster)
    direct = spans.compute(job.script)
    routed = spans.span_for_template(job.template_id, job.script)
    assert direct == routed


def test_cluster_routes_jobs_to_owning_shard():
    config = _config(shards=3)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    job = workload.jobs_for_day(0)[0]
    owner = cluster.router.shard_for_job(job)
    cluster.compile_job(job)
    for index, shard in enumerate(cluster.shards):
        expected = 1 if index == owner else 0
        assert shard.compilation.stats.optimizer_invocations == expected


# -- byte-identity across topologies ------------------------------------------


def test_sharded_run_day_matches_single_shard_serial():
    single = QOAdvisor(_config(workers=1, shards=1))
    sharded = QOAdvisor(_config(workers=4, shards=3))
    baseline = single.run_day(0)
    report = sharded.run_day(0)
    assert report.fingerprint() == baseline.fingerprint()
    # the aggregate cache accounting matches the single cache exactly...
    assert report.cache_stats == baseline.cache_stats
    # ...and the per-shard breakdown sums to it
    assert len(report.shard_cache_stats) == 3
    total = CacheStats()
    for stats in report.shard_cache_stats.values():
        total = total + stats
    assert total == report.cache_stats
    assert list(baseline.shard_cache_stats) == [0]
    sharded.close()
    single.close()


def test_sharded_multi_day_simulation_matches_single_shard():
    single = QOAdvisor(_config(workers=1, shards=1, seed=91))
    sharded = QOAdvisor(_config(workers=4, shards=2, seed=91))
    single_reports = single.simulate(start_day=0, days=3, learned_after=1)
    sharded_reports = sharded.simulate(start_day=0, days=3, learned_after=1)
    assert [r.fingerprint() for r in single_reports] == [
        r.fingerprint() for r in sharded_reports
    ]
    sharded.close()
    single.close()


def test_sharded_bootstrap_corpus_matches_single_shard():
    single = QOAdvisor(_config(workers=1, shards=1, seed=77))
    sharded = QOAdvisor(_config(workers=4, shards=2, seed=77))

    def trace(results):
        return [
            (r.job.job_id, r.status.value, round(r.flight_seconds, 9), r.day)
            for r in results
        ]

    single_corpus = single.pipeline.bootstrap_validation_model(
        start_day=0, days=4, flights_per_day=8
    )
    sharded_corpus = sharded.pipeline.bootstrap_validation_model(
        start_day=0, days=4, flights_per_day=8
    )
    assert trace(single_corpus) == trace(sharded_corpus)
    assert len(single_corpus) > 0
    assert single.engine.compilation.stats == sharded.engine.compilation.stats
    sharded.close()
    single.close()


def test_analysis_harnesses_accept_a_sharded_cluster():
    """The facade covers the raw compile/optimize paths the analysis
    harnesses drive, so a sharded advisor feeds them like a plain engine."""
    from repro.analysis.stability import run_stability_study
    from repro.analysis.variance import run_aa_variance_study

    advisor = QOAdvisor(_config(workers=1, shards=2, seed=13))
    jobs = advisor.workload.jobs_for_day(0)
    variance = run_aa_variance_study(advisor.engine, jobs, runs=2, max_jobs=3)
    assert variance.latency_cv
    stability = run_stability_study(
        advisor.engine, advisor.workload, week0_day=0, week1_day=1, max_jobs=2
    )
    assert stability is not None  # ran to completion on the cluster facade
    advisor.close()


def test_pipeline_direct_construction_refuses_process_backend():
    """The shared-state guard lives in build_executor, so constructing the
    pipeline directly (not via QOAdvisor) is refused the same way."""
    from repro.core.pipeline import QOAdvisorPipeline

    config = dataclasses.replace(
        _config(shards=1),
        execution=ExecutionConfig(workers=4, backend="process"),
    )
    workload = build_workload(config)
    engine = ScopeEngine(workload.catalog, config, workload.registry)
    from repro.flighting.service import FlightingService
    from repro.personalizer.service import PersonalizerService
    from repro.sis.service import SISService

    with pytest.raises(ValueError, match="backend"):
        QOAdvisorPipeline(
            engine=engine,
            workload=workload,
            sis=SISService(workload.registry),
            personalizer=PersonalizerService(config.bandit, seed=config.seed),
            flighting=FlightingService(engine, config.flighting),
            config=config,
        )


def test_close_detaches_replicas_from_the_workload():
    """Sweeps build many clusters over one workload; closing one must stop
    the workload from growing its dead replicas on every day advance."""
    config = _config(shards=2)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    assert len(workload._replicas) == 2
    cluster.close()
    cluster.close()  # idempotent
    assert workload._replicas == []
    # an advisor-owned cluster detaches through QOAdvisor.close()
    advisor = QOAdvisor(_config(workers=1, shards=2))
    assert len(advisor.workload._replicas) == 2
    advisor.close()
    assert advisor.workload._replicas == []


def test_single_shard_config_keeps_plain_engine():
    advisor = QOAdvisor(_config(shards=1))
    assert isinstance(advisor.engine, ScopeEngine)
    sharded = QOAdvisor(_config(shards=2))
    assert isinstance(sharded.engine, ShardedScopeCluster)
    advisor.close()
    sharded.close()
