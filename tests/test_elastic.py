"""Elastic shard membership: resize, rejoin, warm-up, accounting parity.

The contracts under test:

* **router elasticity** — slots go online/offline with minimal template
  movement (rendezvous failover), previews are pure, and a rejoined fleet
  routes exactly like one that never changed;
* **cluster resize** — ``provision_shard``/``activate_shard`` grow the
  fleet with a catalog replica in version lockstep; ``retire_shard``
  shrinks it and ``rejoin_shard`` rebuilds it;
* **warm-up migration** — templates that change owner take their cached
  plans with them, so the new owner serves its first routed batch from a
  hot cache and no cache counter moves;
* **mid-stream resize parity** — a day streamed through N→N+1→N topology
  changes (resizes at drained instants) loses zero jobs and produces the
  same drained-window ``DayReport.fingerprint()`` (including the cache
  accounting) as the static-topology batch run;
* **fail → rejoin** — ``unfail_shard`` reverses ``fail_shard``; a fleet
  that failed and rejoined a shard replays a day byte-identically to one
  that never failed (the routing-determinism revalidation).
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro import QOAdvisor, QOAdvisorServer, ServingConfig, ShardRouter, SimulationConfig
from repro.config import (
    ExecutionConfig,
    FlightingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.sharding import ShardedScopeCluster
from repro.workload.generator import build_workload


def _config(
    workers: int = 1, shards: int = 1, seed: int = 555, provisioned: int = 0
) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(num_templates=10, num_tables=8),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards, provisioned_shards=provisioned),
    )


_TEMPLATES = [f"tmpl-{index:04d}" for index in range(200)]


# -- router elasticity --------------------------------------------------------


def test_provisioned_slots_stay_offline_until_brought_online():
    router = ShardRouter(2, slots=4)
    assert router.num_shards == 4 and router.alive_slots == [0, 1]
    for template in _TEMPLATES:
        assert router.shard_for(template) in (0, 1)
    router.bring_online(2)
    assert router.alive_slots == [0, 1, 2]
    assert any(router.shard_for(t) == 2 for t in _TEMPLATES)


def test_bring_online_moves_only_templates_bound_for_the_new_slot():
    router = ShardRouter(2, slots=4)
    before = {t: router.shard_for(t) for t in _TEMPLATES}
    router.bring_online(2)
    after = {t: router.shard_for(t) for t in _TEMPLATES}
    moved = {t for t in _TEMPLATES if before[t] != after[t]}
    assert moved  # the join attracted real ownership
    # every move targets the joining slot: live shards keep their keyspace
    assert all(after[t] == 2 for t in moved)


def test_take_offline_moves_only_the_leaving_slots_templates():
    router = ShardRouter(3)
    before = {t: router.shard_for(t) for t in _TEMPLATES}
    router.take_offline(1)
    after = {t: router.shard_for(t) for t in _TEMPLATES}
    for template in _TEMPLATES:
        if before[template] != 1:
            assert after[template] == before[template]
        else:
            assert after[template] != 1
    with pytest.raises(ValueError):
        ShardRouter(1).take_offline(0)  # the last slot cannot leave


def test_preview_is_pure_and_matches_the_applied_change():
    router = ShardRouter(2)
    preview = router.preview(online={2})
    assert router.num_shards == 2 and router.offline == set()  # untouched
    applied = ShardRouter(2)
    applied.bring_online(2)
    for template in _TEMPLATES:
        assert preview.shard_for(template) == applied.shard_for(template)


def test_rejoined_router_routes_like_a_never_changed_one():
    router = ShardRouter(3)
    router.take_offline(2)
    router.bring_online(2)
    fresh = ShardRouter(3)
    for template in _TEMPLATES:
        assert router.shard_for(template) == fresh.shard_for(template)


def test_keyspace_extension_matches_a_fresh_router():
    router = ShardRouter(2)
    router.bring_online(2)
    fresh = ShardRouter(3)
    for template in _TEMPLATES:
        assert router.shard_for(template) == fresh.shard_for(template)


# -- cluster resize -----------------------------------------------------------


def test_cluster_add_shard_keeps_catalog_replicas_in_lockstep():
    config = _config(shards=2)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    workload.jobs_for_day(0)  # advance to day 0 before the resize
    slot = cluster.add_shard()
    assert slot == 2 and cluster.num_shards == 3
    replica = cluster.shards[slot].catalog
    assert replica is not workload.catalog
    # version lockstep with every peer: migrated cache keys stay valid
    versions = {shard.catalog.version for shard in cluster.shards}
    assert versions == {workload.catalog.version}
    workload.jobs_for_day(1)  # growth reaches the new replica too
    assert {t.name: t.row_count for t in replica} == {
        t.name: t.row_count for t in workload.catalog
    }
    cluster.close()


def test_cluster_retire_and_rejoin_shard():
    config = _config(shards=3)
    workload = build_workload(config)
    cluster = ShardedScopeCluster(workload, config, workload.registry)
    cluster.retire_shard(1)
    assert 1 in cluster.router.offline
    assert len(workload._replicas) == 2  # the retired replica stopped syncing
    with pytest.raises(ValueError):
        cluster.retire_shard(1)  # already out
    engine = cluster.rejoin_shard(1)
    cluster.activate_shard(1)
    assert cluster.shards[1] is engine
    assert engine.catalog.version == workload.catalog.version
    assert len(workload._replicas) == 3
    assert cluster.router.offline == set()
    cluster.close()


# -- server-level elasticity --------------------------------------------------


def test_add_shard_warmup_prepopulates_the_new_shards_cache():
    """The moved templates' cached plans migrate to the joining shard, so
    its first routed compile is a cache *hit* with zero optimizer work."""
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=0)
    )
    server.start()
    jobs = server.submit_day(0)
    cluster = server.advisor.engine
    before = {t.job.template_id: server.router.shard_for(t.job.template_id) for t in jobs}
    slot = server.add_shard()
    moved_jobs = [
        t.job
        for t in jobs
        if server.router.shard_for(t.job.template_id) == slot
        and before[t.job.template_id] != slot
    ]
    assert moved_jobs  # the resize moved real, already-served templates
    new_stats = cluster.shards[slot].compilation.stats
    base = new_stats.snapshot()
    result = cluster.compile_job(moved_jobs[0])
    delta = new_stats - base
    assert result is not None
    assert delta.hits == 1 and delta.misses == 0
    assert delta.optimizer_invocations == 0  # served entirely from warm-up
    server.shutdown()


def test_mid_stream_resize_parity_and_zero_loss_threaded():
    """The acceptance contract: N→N+1 and N+1→N resizes mid-day, threaded
    submission, zero job loss, drained-window fingerprint parity with the
    static topology (cache accounting included)."""
    batch = QOAdvisor(_config(shards=1))
    baseline = batch.run_day(0)
    batch.close()

    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=2)
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    third = max(1, len(jobs) // 3)

    def submit_chunk(chunk):
        threads = [
            threading.Thread(target=server.submit, args=(job,)) for job in chunk
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    submit_chunk(jobs[:third])
    server.drain(timeout=120.0)
    added = server.add_shard()  # 2 → 3
    assert added == 2 and server.num_shards == 3
    submit_chunk(jobs[third : 2 * third])
    server.drain(timeout=120.0)
    requeued = server.retire_shard(1)  # 3 → 2
    assert requeued == 0  # drained: nothing was waiting
    submit_chunk(jobs[2 * third :])
    server.drain(timeout=120.0)
    report = server.run_maintenance(0)

    assert report.fingerprint() == baseline.fingerprint()
    # every counter matches the static batch run except mqo_preexplored,
    # which is honestly schedule-shaped: the batch day pre-explores at day
    # open, while the serving lanes compiled everything before the window's
    # pre-explore pass ran (plan-resident units are skipped counter-free)
    assert dataclasses.replace(
        report.cache_stats, mqo_preexplored=0
    ) == dataclasses.replace(baseline.cache_stats, mqo_preexplored=0)
    # zero loss: every submitted job id shows up in the day report
    reported = {run.job.job_id for run in report.production_runs} | set(
        report.failed_jobs
    )
    assert {job.job_id for job in jobs} == reported
    stats = server.stats()
    assert stats.jobs_in_flight == 0
    assert stats.shards[1].retired and not stats.shards[1].alive
    # new arrivals avoid the retired lane
    followup = server.submit(server.advisor.workload.jobs_for_day(0)[0])
    assert followup.shard != 1
    server.drain(timeout=60.0)
    server.shutdown()


def test_fail_rejoin_replay_matches_a_never_failed_run():
    """The unfail path: fail mid-stream, rejoin mid-stream, and the drained
    day is byte-identical to a fleet that never failed — exclusion sets no
    longer poison the fleet."""
    reference = QOAdvisorServer(
        config=_config(shards=3), serving=ServingConfig(workers_per_shard=0)
    )
    expected = reference.stream_day(0)
    reference.shutdown()

    server = QOAdvisorServer(
        config=_config(shards=3), serving=ServingConfig(workers_per_shard=0)
    )
    server.start()
    jobs = server.advisor.workload.jobs_for_day(0)
    third = max(1, len(jobs) // 3)
    for job in jobs[:third]:
        server.submit(job)
    victim = 1
    server.fail_shard(victim)
    assert victim in server.failed_shards
    for job in jobs[third : 2 * third]:
        ticket = server.submit(job)
        assert ticket.shard != victim  # failover routing held
    rebalanced = server.unfail_shard(victim)
    assert rebalanced == 0  # inline schedule: nothing was queued
    assert victim not in server.failed_shards
    assert server.stats().shards[victim].alive
    for job in jobs[2 * third :]:
        server.submit(job)
    server.drain(timeout=60.0)
    report = server.run_maintenance(0)

    assert report.fingerprint() == expected.fingerprint()
    assert report.cache_stats == expected.cache_stats
    # routing determinism revalidated: the fleet routes like a fresh one
    fresh = ShardRouter(3)
    for job in jobs:
        assert server.router.shard_for(job.template_id) == fresh.shard_for(
            job.template_id
        )
    # the rejoined lane serves traffic again
    server.submit_day(1)
    server.drain(timeout=60.0)
    assert server.stats().shards[victim].completed > 0
    server.run_maintenance(1)
    server.shutdown()


def test_unfail_is_a_noop_on_a_live_shard_and_elastic_needs_a_cluster():
    server = QOAdvisorServer(
        config=_config(shards=2), serving=ServingConfig(workers_per_shard=0)
    )
    assert server.unfail_shard(1) == 0  # alive: nothing to do
    server.shutdown()
    single = QOAdvisorServer(
        config=_config(shards=1), serving=ServingConfig(workers_per_shard=0)
    )
    with pytest.raises(ValueError, match="sharded cluster"):
        single.add_shard()
    with pytest.raises(ValueError, match="sharded cluster"):
        single.retire_shard(0)
    single.shutdown()


def test_retired_shard_can_rejoin_with_a_fresh_replica():
    server = QOAdvisorServer(
        config=_config(shards=3), serving=ServingConfig(workers_per_shard=0)
    )
    server.start()
    server.submit_day(0)
    server.drain(timeout=60.0)
    server.retire_shard(2)
    old_engine = server.advisor.engine.shards[2]
    server.unfail_shard(2)
    assert server.advisor.engine.shards[2] is not old_engine  # rebuilt
    assert (
        server.advisor.engine.shards[2].catalog.version
        == server.advisor.workload.catalog.version
    )
    stats = server.stats()
    assert stats.shards[2].alive and not stats.shards[2].retired
    server.submit_day(1)
    server.drain(timeout=60.0)
    server.run_maintenance(0)
    server.run_maintenance(1)
    server.shutdown()
