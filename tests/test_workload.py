"""Workload generator tests: catalog, templates, daily stream."""

import numpy as np
import pytest

from repro.scope.compile import compile_script
from repro.workload.schemas import ENTITY_KEYS, build_catalog, grow_catalog
from repro.workload.templates import TemplateShape, make_templates


def test_catalog_has_requested_tables(tiny_workload, tiny_config):
    assert len(tiny_workload.catalog) == tiny_config.workload.num_tables


def test_tables_have_entity_keys_and_stats(tiny_workload):
    key_names = {name for name, _ in ENTITY_KEYS}
    for table in tiny_workload.catalog:
        keys = [c for c in table.schema if c.name in key_names]
        assert keys, f"{table.name} has no entity key"
        for column in keys:
            assert table.stats_for(column.name).ndv >= 1


def test_catalog_generation_is_deterministic(tiny_config):
    a = build_catalog(tiny_config.workload, tiny_config.seed, 0.1)
    b = build_catalog(tiny_config.workload, tiny_config.seed, 0.1)
    assert [t.row_count for t in a] == [t.row_count for t in b]


def test_grow_catalog_idempotent_per_day(tiny_config):
    catalog = build_catalog(tiny_config.workload, tiny_config.seed, 0.1)
    base = {t.name: t.row_count for t in catalog}
    grow_catalog(catalog, base, 5, tiny_config.seed, 0.9, 1.2)
    after_first = {t.name: t.row_count for t in catalog}
    grow_catalog(catalog, base, 5, tiny_config.seed, 0.9, 1.2)
    assert {t.name: t.row_count for t in catalog} == after_first
    grow_catalog(catalog, base, 0, tiny_config.seed, 0.9, 1.2)
    assert {t.name: t.row_count for t in catalog} == base


def test_templates_cover_shapes(tiny_workload):
    shapes = {t.shape for t in tiny_workload.templates}
    assert TemplateShape.COPY in shapes
    assert len(shapes) >= 4


def test_all_templates_compile_and_optimize(tiny_workload, tiny_engine):
    for template in tiny_workload.templates:
        script = template.script_for_day(0)
        compiled = compile_script(script, tiny_workload.catalog)
        result = tiny_engine.optimize(compiled)
        assert result.est_cost >= 0


def test_recurring_instances_share_shape_but_differ_in_literals(tiny_workload):
    recurring = [t for t in tiny_workload.templates if t.recurring]
    template = next(
        t for t in recurring if t.shape != TemplateShape.COPY and t._plan["filter"]
    )
    day0 = template.script_for_day(0)
    day3 = template.script_for_day(3)
    assert day0 != day3  # literals move
    # but the statement skeleton is identical
    skeleton = lambda s: [line.split("WHERE")[0] for line in s.splitlines()]
    assert skeleton(day0) == skeleton(day3)


def test_daily_jobs_mostly_recurring(tiny_workload):
    day0 = {j.template_id for j in tiny_workload.jobs_for_day(0)}
    day1 = {j.template_id for j in tiny_workload.jobs_for_day(1)}
    overlap = len(day0 & day1) / len(day0)
    assert overlap > 0.6  # paper: >60 % of jobs are recurring


def test_manual_hint_fraction_close_to_config(tiny_workload):
    jobs = [j for day in range(6) for j in tiny_workload.jobs_for_day(day)]
    fraction = sum(1 for j in jobs if j.manual_hint is not None) / len(jobs)
    assert fraction <= 0.2  # config default 9 %, allow sampling noise


def test_manual_hints_do_not_break_jobs(tiny_workload, tiny_engine):
    jobs = [j for j in tiny_workload.jobs_for_day(0) if j.manual_hint is not None]
    for job in jobs:
        result = tiny_engine.compile_job(job)  # must not raise
        assert result.est_cost >= 0


def test_job_ids_unique_within_day(tiny_workload):
    jobs = tiny_workload.jobs_for_day(2)
    ids = [j.job_id for j in jobs]
    assert len(ids) == len(set(ids))
