"""SIS hint file format and service tests."""

import pytest

from repro.errors import SISError
from repro.scope.optimizer.rules.base import RuleCategory, RuleFlip, default_registry
from repro.sis.hints import HintEntry, parse_hint_file, render_hint_file, validate_entries
from repro.sis.service import SISService


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def _valid_flip(registry):
    rule_id = registry.ids_in_category(RuleCategory.OFF_BY_DEFAULT)[0]
    return RuleFlip(rule_id, turn_on=True)


def test_render_parse_roundtrip(registry):
    entries = [HintEntry("T0001", _valid_flip(registry))]
    content = render_hint_file(entries, day=3)
    parsed = parse_hint_file(content)
    assert parsed == entries


def test_parse_skips_comments_and_blanks():
    assert parse_hint_file("# header\n\n") == []


def test_parse_rejects_malformed_lines():
    with pytest.raises(SISError):
        parse_hint_file("T0001\t5")
    with pytest.raises(SISError):
        parse_hint_file("T0001\tfive\ton")
    with pytest.raises(SISError):
        parse_hint_file("T0001\t5\tmaybe")


def test_validate_rejects_required_rules(registry):
    required = registry.ids_in_category(RuleCategory.REQUIRED)[0]
    with pytest.raises(SISError, match="required"):
        validate_entries([HintEntry("T1", RuleFlip(required, False))], registry)


def test_validate_rejects_duplicates(registry):
    flip = _valid_flip(registry)
    with pytest.raises(SISError, match="duplicate"):
        validate_entries([HintEntry("T1", flip), HintEntry("T1", flip)], registry)


def test_validate_rejects_noop_hints(registry):
    rule_id = registry.ids_in_category(RuleCategory.OFF_BY_DEFAULT)[0]
    with pytest.raises(SISError, match="does not change"):
        validate_entries([HintEntry("T1", RuleFlip(rule_id, turn_on=False))], registry)


def test_validate_rejects_unknown_rule(registry):
    with pytest.raises(SISError, match="unknown rule"):
        validate_entries([HintEntry("T1", RuleFlip(9999, True))], registry)


def test_service_upload_and_lookup(registry):
    sis = SISService(registry)
    flip = _valid_flip(registry)
    version = sis.upload([HintEntry("T0007", flip)], day=1)
    assert version.version == 1
    assert sis.lookup("T0007") == flip
    assert sis.lookup("T9999") is None


def test_service_upload_replaces_active_set(registry):
    sis = SISService(registry)
    flip = _valid_flip(registry)
    sis.upload([HintEntry("A", flip)], day=1)
    sis.upload([HintEntry("B", flip)], day=2)
    assert sis.lookup("A") is None
    assert sis.lookup("B") == flip
    assert sis.current_version == 2


def test_service_rollback(registry):
    sis = SISService(registry)
    flip = _valid_flip(registry)
    sis.upload([HintEntry("A", flip)], day=1)
    sis.upload([HintEntry("B", flip)], day=2)
    sis.rollback()
    assert sis.lookup("A") == flip
    assert sis.lookup("B") is None
    sis.rollback()
    assert sis.active_hints() == {}


def test_service_attach_wires_engine(registry, tiny_engine):
    sis = SISService(registry)
    sis.attach(tiny_engine)
    assert tiny_engine.hint_provider is not None
    tiny_engine.hint_provider = None  # restore for other tests
