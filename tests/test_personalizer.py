"""Personalizer service tests: rank/reward, modes, versioning, CFE."""

import pytest

from repro.bandit.features import ActionFeatures, ContextFeatures
from repro.config import BanditConfig
from repro.errors import PersonalizerError
from repro.personalizer.service import PersonalizerService


def _context():
    return ContextFeatures(span=(1, 2), estimated_cost=10.0)


def _actions(n=3):
    return [ActionFeatures(rule_id=None)] + [
        ActionFeatures(rule_id=i, turn_on=True) for i in range(1, n)
    ]


def test_rank_returns_event_and_probability():
    service = PersonalizerService(seed=1)
    response = service.rank(_context(), _actions())
    assert response.probability == pytest.approx(1.0 / 3)
    assert service.pending_events == 1


def test_rank_empty_actions_rejected():
    with pytest.raises(PersonalizerError):
        PersonalizerService(seed=1).rank(_context(), [])


def test_reward_consumes_event():
    service = PersonalizerService(seed=1)
    response = service.rank(_context(), _actions())
    service.reward(response.event_id, 1.0)
    assert service.pending_events == 0
    assert len(service.event_log) == 1
    with pytest.raises(PersonalizerError):
        service.reward(response.event_id, 1.0)


def test_unknown_event_rejected():
    with pytest.raises(PersonalizerError):
        PersonalizerService(seed=1).reward("nope", 1.0)


def test_learned_mode_exploits_rewards():
    config = BanditConfig(epsilon=0.0, learning_rate=0.3)
    service = PersonalizerService(config, seed=2, mode="uniform_logging")
    actions = _actions(3)
    # action 2 is clearly best
    for _ in range(200):
        response = service.rank(_context(), actions)
        reward = 1.8 if response.action.rule_id == 2 else 0.6
        service.reward(response.event_id, reward)
    service.switch_mode("learned")
    picks = [service.rank(_context(), actions) for _ in range(10)]
    for response in picks:
        service.reward(response.event_id, 1.0)
    assert sum(1 for p in picks if p.action.rule_id == 2) >= 8


def test_bad_mode_rejected():
    with pytest.raises(PersonalizerError):
        PersonalizerService(seed=1, mode="chaotic")
    with pytest.raises(PersonalizerError):
        PersonalizerService(seed=1).switch_mode("chaotic")


def test_model_versioning_roundtrip():
    service = PersonalizerService(seed=3)
    response = service.rank(_context(), _actions())
    service.reward(response.event_id, 2.0)
    version = service.publish_version()
    before = service.learner.snapshot()
    response = service.rank(_context(), _actions())
    service.reward(response.event_id, -5.0)
    service.restore_version(version)
    assert (service.learner.snapshot() == before).all()
    with pytest.raises(PersonalizerError):
        service.restore_version(99)


def test_restore_version_restores_full_snapshot():
    """Rollback means the *whole* snapshot: the updates counter must travel
    with the weights, or a restored model claims training it never kept."""
    service = PersonalizerService(seed=5)
    response = service.rank(_context(), _actions())
    service.reward(response.event_id, 1.5)
    version = service.publish_version()
    updates_at_publish = service.learner.updates
    for _ in range(7):
        response = service.rank(_context(), _actions())
        service.reward(response.event_id, 0.2)
    assert service.learner.updates == updates_at_publish + 7
    service.restore_version(version)
    assert service.learner.updates == updates_at_publish


def test_unrewarded_events_expire_with_default_reward():
    config = BanditConfig(activation_timeout_days=2, expired_event_reward=0.25)
    service = PersonalizerService(config, seed=6)
    stale = service.rank(_context(), _actions())
    service.publish_version()  # tick 1: age 1, still pending
    assert service.pending_events == 1
    fresh = service.rank(_context(), _actions())
    service.publish_version()  # tick 2: the stale event ages out
    assert service.pending_events == 1  # only the fresh one survives
    assert service.expired_events == 1
    assert service.event_log[-1].reward == 0.25
    # the expired event is final: a late reward is rejected like a double one
    with pytest.raises(PersonalizerError):
        service.reward(stale.event_id, 1.0)
    # the fresh event is still rewardable
    service.reward(fresh.event_id, 1.0)
    assert service.pending_events == 0


def test_expiry_disabled_with_zero_timeout():
    config = BanditConfig(activation_timeout_days=0)
    service = PersonalizerService(config, seed=7)
    service.rank(_context(), _actions())
    for _ in range(5):
        service.publish_version()
    assert service.pending_events == 1
    assert service.expired_events == 0


def test_counterfactual_evaluation_reports_estimators():
    service = PersonalizerService(seed=4)
    for _ in range(50):
        response = service.rank(_context(), _actions())
        service.reward(response.event_id, 1.0 if response.action.rule_id else 0.5)
    estimates = service.counterfactual_evaluate()
    assert set(estimates) >= {"ips", "snips", "dr", "logged_mean", "events"}
    assert estimates["events"] == 50.0
    assert 0.0 <= estimates["snips"] <= 2.0
