"""Fragment-level plan caching: keys, identity, eviction, migration.

The contract under test (the fragment cache's hard invariant): compilation
is fragment-structured *always* — each maximal join-rooted subtree is
explored in an isolated memo and its closure adopted by replay — and the
cache only memoizes those isolated searches.  Hit and miss adopt
bit-identical entries through identical code, so ``DayReport.fingerprint()``
is byte-identical with the fragment cache on, off, and at any worker or
shard count, while the store's keys bake in every input an entry depends
on (content digest, rule-configuration bits, catalog version, hint
generation) so a stale fragment is unreachable by construction.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import QOAdvisor, SimulationConfig
from repro.config import (
    CacheConfig,
    ExecutionConfig,
    FlightingConfig,
    ShardingConfig,
    WorkloadConfig,
)
from repro.scope.cache import CacheStats, FragmentCache, PlanCache
from repro.scope.engine import ScopeEngine
from repro.scope.optimizer.rules.base import RuleFlip
from repro.workload.generator import build_workload
from repro.workload.templates import TemplateShape


JOIN_BODY = """
r0 = EXTRACT uid:long, etype:int, val:double FROM "/shares/data/events.ss";
r1 = EXTRACT uid:long, age:int, region:int FROM "/shares/data/users.ss";
joined = SELECT a0.uid AS k0, a0.val AS m0, a1.age AS v1
         FROM r0 AS a0 JOIN r1 AS a1 ON a0.uid == a1.uid
         WHERE a0.etype == 3;
"""


def _script(suffix: str) -> str:
    """Scripts sharing one join body, differing only in output path."""
    return JOIN_BODY + f'OUTPUT joined TO "/out/frag_{suffix}.ss";\n'


@pytest.fixture()
def fresh_engine(small_catalog) -> ScopeEngine:
    return ScopeEngine(small_catalog.clone(), SimulationConfig(seed=101))


def _frag_delta(engine: ScopeEngine, script: str, config=None) -> CacheStats:
    service = engine.compilation
    before = service.stats.snapshot()
    service.compile_script(script, config or engine.default_config)
    return service.stats - before


# -- store keys and invalidation ----------------------------------------------


def test_shared_join_body_hits_across_scripts(fresh_engine):
    first = _frag_delta(fresh_engine, _script("a"))
    assert first.fragment_misses > 0
    assert first.fragment_inserts == first.fragment_misses
    assert first.fragment_hits == 0
    second = _frag_delta(fresh_engine, _script("b"))
    # different script, same join block: every fragment lookup hits
    assert second.fragment_hits == first.fragment_misses
    assert second.fragment_misses == 0
    assert second.fragment_inserts == 0


def test_catalog_version_bump_misses_the_fragment_cache(fresh_engine):
    catalog = fresh_engine.catalog
    first = _frag_delta(fresh_engine, _script("a"))
    assert first.fragment_inserts > 0
    catalog.replace_table(catalog.table("users"))  # version bump
    again = _frag_delta(fresh_engine, _script("a"))
    # the catalog version is baked into every fragment key: nothing hits
    assert again.fragment_hits == 0
    assert again.fragment_misses == first.fragment_misses


def test_hint_generation_bump_misses_the_fragment_cache(fresh_engine):
    service = fresh_engine.compilation
    _frag_delta(fresh_engine, _script("a"))
    assert len(service.fragments) > 0
    generation = service.fragments.generation
    service.invalidate()  # what SIS does on every hint-file installation
    assert service.fragments.generation == generation + 1
    assert len(service.fragments) == 0
    again = _frag_delta(fresh_engine, _script("b"))
    assert again.fragment_hits == 0
    assert again.fragment_misses > 0


def test_rule_configuration_change_misses_the_fragment_cache(fresh_engine):
    first = _frag_delta(fresh_engine, _script("a"))
    assert first.fragment_inserts > 0
    rule = fresh_engine.registry.by_name("JoinCommute")
    flipped = RuleFlip(rule.rule_id, turn_on=False).apply_to(
        fresh_engine.default_config
    )
    again = _frag_delta(fresh_engine, _script("a"), flipped)
    # same subtree digest, different configuration bits: distinct keys
    assert again.fragment_hits == 0
    assert again.fragment_misses > 0


def test_fragment_disabled_still_compiles_identically(small_catalog):
    config = SimulationConfig(seed=101)
    on = ScopeEngine(small_catalog.clone(), config)
    off = ScopeEngine(
        small_catalog.clone(),
        dataclasses.replace(config, cache=CacheConfig(fragment_enabled=False)),
    )
    result_on = on.compilation.compile_script(_script("a"), on.default_config)
    result_off = off.compilation.compile_script(_script("a"), off.default_config)
    assert result_on.est_cost == result_off.est_cost
    assert result_on.signature.rule_ids == result_off.signature.rule_ids
    assert off.compilation.stats.fragment_lookups == 0
    # the disabled path records no keys (nothing to migrate)
    assert result_off.fragment_keys == ()


# -- the shared-subtree workload knob -----------------------------------------


def _pool_config(seed: int = 31, workers: int = 1, shards: int = 1, **cache) -> SimulationConfig:
    # seed 31 draws multiple same-shape templates onto one pool entry;
    # manual hints are off so pool-mates compile under identical
    # configuration bits (a manual hint is a legitimate fragment-key split)
    return dataclasses.replace(
        SimulationConfig(seed=seed),
        workload=WorkloadConfig(
            num_templates=12,
            num_tables=8,
            manual_hint_fraction=0.0,
            shared_subtree_fraction=0.7,
            shared_subtree_pool=3,
        ),
        flighting=FlightingConfig(filtered_prob=0.0, failure_prob=0.0),
        execution=ExecutionConfig(workers=workers, backend="thread"),
        sharding=ShardingConfig(shards=shards),
        cache=CacheConfig(**cache),
    )


def test_shared_subtree_knob_pools_join_designs():
    workload = build_workload(_pool_config())
    pooled = [t for t in workload.templates if t.shared_pool is not None]
    assert pooled, "expected some templates to adopt a pool design"
    assert all(
        t.shape in (TemplateShape.JOIN, TemplateShape.JOIN_AGGREGATE) for t in pooled
    )
    # pool-mates render the identical join block for the same day
    by_pool: dict[str, list[str]] = {}
    for template in pooled:
        script = template.script_for_day(2)
        joined = script.split("joined = ")[1].split(";")[0]
        by_pool.setdefault(template.shared_pool, []).append(joined)
    assert any(len(bodies) > 1 for bodies in by_pool.values())
    for bodies in by_pool.values():
        assert len(set(bodies)) == 1


def test_default_workload_is_untouched_by_the_knob():
    plain = build_workload(
        dataclasses.replace(
            SimulationConfig(seed=913),
            workload=WorkloadConfig(num_templates=12, num_tables=8),
        )
    )
    assert all(t.shared_pool is None for t in plain.templates)


def test_shared_pool_workload_produces_fragment_hits():
    config = _pool_config()
    workload = build_workload(config)
    engine = ScopeEngine(workload.catalog, config, workload.registry)
    for job in workload.jobs_for_day(0):
        engine.compile_job(job)
    stats = engine.compilation.stats
    assert stats.fragment_hits > 0
    assert stats.fragment_hit_rate > 0.0


# -- byte-identity: on/off × workers × shards ---------------------------------


def test_fingerprint_identical_with_fragments_on_off_and_any_topology():
    baseline = QOAdvisor(_pool_config(fragment_enabled=True))
    report = baseline.run_day(0)
    fingerprint = report.fingerprint()
    core = report.cache_stats.core()
    assert report.cache_stats.fragment_hits > 0  # the cache actually engaged
    baseline.close()
    variants = [
        dict(workers=1, shards=1, fragment_enabled=False),
        dict(workers=4, shards=1, fragment_enabled=True),
        dict(workers=4, shards=1, fragment_enabled=False),
        dict(workers=4, shards=4, fragment_enabled=True),
        dict(workers=1, shards=4, fragment_enabled=False),
    ]
    for variant in variants:
        advisor = QOAdvisor(_pool_config(**variant))
        other = advisor.run_day(0)
        assert other.fingerprint() == fingerprint, variant
        # the whole-script cache accounting is part of the contract too
        assert other.cache_stats.core() == core, variant
        advisor.close()


def test_multi_day_fingerprints_survive_the_fragment_ablation():
    on = QOAdvisor(_pool_config(seed=77, workers=4, fragment_enabled=True))
    off = QOAdvisor(_pool_config(seed=77, workers=1, fragment_enabled=False))
    on_reports = on.simulate(start_day=0, days=2, learned_after=1)
    off_reports = off.simulate(start_day=0, days=2, learned_after=1)
    assert [r.fingerprint() for r in on_reports] == [
        r.fingerprint() for r in off_reports
    ]
    on.close()
    off.close()


# -- accounting ----------------------------------------------------------------


def test_cache_stats_fragment_counters_diff_and_sum():
    a = CacheStats(hits=2, fragment_hits=5, fragment_misses=3, fragment_inserts=3,
                   rule_applications=100)
    b = CacheStats(hits=1, fragment_hits=2, fragment_misses=1, fragment_inserts=1,
                   rule_applications=40)
    delta = a - b
    assert (delta.fragment_hits, delta.fragment_misses, delta.fragment_inserts) == (3, 2, 2)
    assert delta.rule_applications == 60
    total = a + b
    assert (total.fragment_hits, total.fragment_misses) == (7, 4)
    assert total.fragment_lookups == 11
    assert a.fragment_hit_rate == 5 / 8
    # the fingerprint core excludes every fragment/work counter
    assert a.core() == dataclasses.replace(
        a, fragment_hits=0, fragment_misses=0, fragment_inserts=0, rule_applications=0
    ).core()


def test_shard_stats_surface_fragment_counters():
    from repro.serving.stats import ShardStats

    stats = ShardStats(shard=0, fragment_hits=6, fragment_misses=2, fragment_inserts=2)
    assert stats.fragment_hit_rate == 0.75
    assert ShardStats(shard=1).fragment_hit_rate == 0.0


def test_script_digest_is_memoized_per_text(fresh_engine):
    service = fresh_engine.compilation
    script = _script("a")
    first = service._script_digest(script)
    assert first == PlanCache.script_hash(script)
    assert service._script_digest(script) is first  # memo, not recompute
    service.invalidate()
    assert script not in service._digests  # generation bump re-bounds the memo


# -- eviction determinism -------------------------------------------------------


def test_fragment_eviction_is_epoch_granular_and_deterministic():
    cache = FragmentCache(capacity=2)
    cache.put(("a",), "A")
    cache.put(("b",), "B")
    cache.checkpoint()  # epoch 0 -> 1, within capacity
    cache.put(("c",), "C")
    cache.get(("a",))  # refresh a's recency in epoch 1
    assert cache.checkpoint() == 1  # b is the (last_epoch, key) victim
    assert cache.get(("a",)) is not None
    assert cache.get(("c",)) is not None
    assert cache.get(("b",)) is None
    assert cache.stats.fragment_hits == 3
    assert cache.stats.fragment_misses == 1


def test_capacity_squeeze_keeps_runs_and_topologies_identical():
    """capacity ≪ working set: eviction churn must not leak into results."""
    tight = dict(fragment_enabled=True, fragment_capacity=2)
    first = QOAdvisor(_pool_config(seed=31, **tight))
    report = first.run_day(0)
    fingerprint = report.fingerprint()
    resident = sorted(first.engine.engine_for_template(
        first.workload.templates[0].template_id
    ).compilation.fragments._entries)
    first.close()
    again = QOAdvisor(_pool_config(seed=31, **tight))
    repeat = again.run_day(0)
    assert repeat.fingerprint() == fingerprint
    assert sorted(again.engine.engine_for_template(
        again.workload.templates[0].template_id
    ).compilation.fragments._entries) == resident
    again.close()
    threaded = QOAdvisor(_pool_config(seed=31, workers=4, **tight))
    assert threaded.run_day(0).fingerprint() == fingerprint
    threaded.close()


# -- migration ------------------------------------------------------------------


def test_script_state_migration_carries_and_dedups_fragments(small_catalog):
    config = SimulationConfig(seed=101)
    catalog = small_catalog.clone()
    source = ScopeEngine(catalog, config)
    dest = ScopeEngine(catalog, config)
    script_a, script_b = _script("a"), _script("b")
    source.compilation.compile_script(script_a, source.default_config)
    source.compilation.compile_script(script_b, source.default_config)

    sent: set[tuple] = set()
    plans_a, parsed_a, frags_a = source.compilation.export_script_state(
        script_a, skip_fragments=sent
    )
    assert plans_a and frags_a  # the join block travels with its script
    plans_b, parsed_b, frags_b = source.compilation.export_script_state(
        script_b, skip_fragments=sent
    )
    assert plans_b
    # both scripts share the one join fragment; the second export dedups it
    assert frags_b == {}

    adopted, rejected = dest.compilation.import_script_state(
        plans_a, parsed_a, frags_a
    )
    assert adopted == len(plans_a) and not rejected
    dest.compilation.import_script_state(plans_b, parsed_b, frags_b)
    assert len(dest.compilation.fragments) == len(frags_a)

    # a fresh pool-mate script compiles on the destination with pure hits
    before = dest.compilation.stats.snapshot()
    dest.compilation.compile_script(_script("c"), dest.default_config)
    delta = dest.compilation.stats - before
    assert delta.fragment_hits == len(frags_a)
    assert delta.fragment_misses == 0
