"""Analysis harness tests (variance, correlation, aggregates, report)."""

import numpy as np
import pytest

from repro.analysis.correlation import IoCorrelationStudy, run_io_correlation_study
from repro.analysis.report import ComparisonRow, render_comparison
from repro.analysis.stability import StabilityPoint, StabilityStudy
from repro.analysis.table3 import PolicyCounts, Table3Result
from repro.analysis.variance import run_aa_variance_study
from repro.flighting.results import FlightRequest, FlightResult, FlightStatus
from repro.scope.optimizer.rules.base import RuleFlip
from repro.scope.runtime.metrics import JobMetrics


def _metrics(pnhours=1.0, read=1e9, written=1e8, latency=100.0):
    return JobMetrics(
        latency_s=latency,
        pnhours=pnhours,
        vertices=10,
        data_read=read,
        data_written=written,
        max_memory=1e6,
        avg_memory=1e6,
        cpu_seconds=10.0,
        io_seconds=10.0,
    )


def _flight(pn_delta, read_delta, written_delta, day=0, status=FlightStatus.SUCCESS):
    request = FlightRequest(job=None, flip=RuleFlip(0, True))
    return FlightResult(
        request=request,
        status=status,
        baseline=_metrics(),
        treatment=_metrics(
            pnhours=1.0 + pn_delta,
            read=1e9 * (1 + read_delta),
            written=1e8 * (1 + written_delta),
        ),
        day=day,
    )


def test_aa_variance_study_structure(tiny_engine, tiny_workload):
    jobs = tiny_workload.jobs_for_day(0)
    study = run_aa_variance_study(tiny_engine, jobs, runs=4, max_jobs=5)
    assert len(study.latency_cv) == len(study.pnhours_cv) == len(study.mean_latency)
    assert study.fraction_above(0.0, "latency") == 1.0
    assert 0.0 <= study.fraction_above(0.05, "pnhours") <= 1.0
    normalized = study.normalized_execution_time
    assert normalized.max() == pytest.approx(1.0)


def test_io_correlation_study_from_corpus():
    corpus = [
        _flight(-0.2, -0.3, -0.5),
        _flight(0.0, 0.0, 0.0),
        _flight(0.3, 0.5, 0.4),
        _flight(0.15, 0.2, 0.3),
        _flight(0.0, 0.0, 0.0, status=FlightStatus.FAILURE),  # skipped
    ]
    study = run_io_correlation_study(corpus)
    assert len(study.pnhours_deltas) == 4
    assert study.read_correlation > 0.9
    slope, _ = study.read_trend()
    assert slope > 0


def test_flight_deltas_computed_from_metrics():
    result = _flight(-0.25, -0.4, -0.1)
    assert result.pnhours_delta == pytest.approx(-0.25)
    assert result.data_read_delta == pytest.approx(-0.4)
    assert result.data_written_delta == pytest.approx(-0.1)


def test_stability_study_regression_fraction():
    study = StabilityStudy(
        points=[
            StabilityPoint("a", -0.3, +0.1, -0.2, -0.1),  # latency regressed
            StabilityPoint("b", -0.2, -0.1, -0.2, -0.3),  # stayed improved
            StabilityPoint("c", +0.1, +0.2, +0.1, +0.2),  # never improved
        ]
    )
    assert study.regression_fraction("latency") == pytest.approx(0.5)
    assert study.regression_fraction("pnhours") == 0.0


def test_table3_counts_and_factor():
    result = Table3Result(
        random=PolicyCounts(lower=10, equal=30, higher=40, failures=20, total_est_cost=1e11),
        bandit=PolicyCounts(lower=35, equal=30, higher=20, failures=15, total_est_cost=1e9),
    )
    assert result.random.jobs == 100
    assert result.random.fraction("lower") == pytest.approx(0.1)
    assert result.cost_improvement_factor == pytest.approx(100.0)


def test_comparison_row_rendering():
    row = ComparisonRow("metric", "10 %", "12 %", holds=True)
    text = render_comparison("Title", [row])
    assert "Title" in text and "shape holds" in text
    bad = ComparisonRow("metric", "10 %", "99 %", holds=False)
    assert "MISMATCH" in bad.render()
    neutral = ComparisonRow("metric", "10 %", "12 %")
    assert "MISMATCH" not in neutral.render()
