"""Flighting Service tests."""

import dataclasses

import pytest

from repro.config import FlightingConfig
from repro.flighting.results import FlightRequest, FlightStatus
from repro.flighting.service import FlightingService
from repro.scope.optimizer.rules.base import RuleFlip


@pytest.fixture(scope="module")
def service(tiny_engine):
    config = FlightingConfig(filtered_prob=0.0, failure_prob=0.0)
    return FlightingService(tiny_engine, config)


@pytest.fixture(scope="module")
def steerable_job(tiny_workload, tiny_engine):
    from repro.core.spans import SpanComputer

    spans = SpanComputer(tiny_engine)
    for job in tiny_workload.jobs_for_day(0):
        span = spans.span_for_template(job.template_id, job.script)
        if span:
            rule_id = sorted(span)[0]
            flip = RuleFlip(rule_id, not tiny_engine.default_config.is_enabled(rule_id))
            return job, flip
    pytest.skip("no steerable job found")


def test_flight_success_produces_both_arms(service, steerable_job):
    job, flip = steerable_job
    result = service.flight(FlightRequest(job, flip), day=0)
    assert result.status in (FlightStatus.SUCCESS, FlightStatus.FAILURE)
    if result.status is FlightStatus.SUCCESS:
        assert result.baseline is not None and result.treatment is not None
        assert result.flight_seconds > 0
        # deltas are well-defined
        _ = result.pnhours_delta, result.latency_delta, result.vertices_delta


def test_flight_gates_filter_jobs(tiny_engine, steerable_job):
    job, flip = steerable_job
    always_filtered = FlightingService(
        tiny_engine, FlightingConfig(filtered_prob=1.0, failure_prob=0.0)
    )
    result = always_filtered.flight(FlightRequest(job, flip), day=0)
    assert result.status is FlightStatus.FILTERED


def test_flight_compile_error_is_failure(service, tiny_workload, tiny_engine):
    job = tiny_workload.jobs_for_day(0)[0]
    # find a flip that breaks compilation: disable the sole union/agg impl
    bad = RuleFlip(tiny_engine.registry.by_name("HashAggregateImpl").rule_id, False)
    result = service.flight(FlightRequest(job, bad), day=0)
    assert result.status in (FlightStatus.FAILURE, FlightStatus.FILTERED, FlightStatus.SUCCESS)


def test_aa_runs_share_plan_but_not_noise(service, tiny_workload):
    job = tiny_workload.jobs_for_day(0)[0]
    runs = service.aa_runs(job, runs=4, day=0)
    assert len(runs) == 4
    assert len({m.latency_s for m in runs}) > 1
    assert len({m.data_read for m in runs}) == 1


def test_queue_respects_budget(tiny_engine, steerable_job):
    job, flip = steerable_job
    tight = FlightingService(
        tiny_engine,
        FlightingConfig(
            queue_size=1, total_budget_s=1.0, filtered_prob=0.0, failure_prob=0.0
        ),
    )
    requests = [FlightRequest(job, flip, est_cost_delta=-0.1 * i) for i in range(5)]
    results = tight.run_queue(requests, day=0)
    statuses = [r.status for r in results]
    assert FlightStatus.NOT_RUN in statuses  # budget ran out
    assert statuses[0] is not FlightStatus.NOT_RUN  # best estimate served first


def test_queue_orders_by_estimated_delta(service, steerable_job):
    job, flip = steerable_job
    requests = [
        FlightRequest(job, flip, est_cost_delta=0.5),
        FlightRequest(job, flip, est_cost_delta=-0.9),
    ]
    results = service.run_queue(requests, day=1)
    assert results[0].request.est_cost_delta == -0.9


def test_timeout_caps_flight_seconds_in_the_result(tiny_engine, steerable_job):
    """A timed-out flight is killed at the limit, per arm: the machine time
    in the FlightResult itself is capped, so budget admission and downstream
    consumers (analysis, fingerprints) all see the same number."""
    job, flip = steerable_job
    timeout_s = 0.5  # every simulated run exceeds half a second
    tight = FlightingService(
        tiny_engine,
        FlightingConfig(per_job_timeout_s=timeout_s, filtered_prob=0.0, failure_prob=0.0),
    )
    result = tight.flight(FlightRequest(job, flip), day=0)
    assert result.status is FlightStatus.TIMEOUT
    # each arm contributes what it consumed before being killed
    assert result.flight_seconds == min(result.baseline.latency_s, timeout_s) + min(
        result.treatment.latency_s, timeout_s
    )
    assert result.flight_seconds <= 2 * timeout_s
    # the un-capped machine time really was larger (the cap did something)
    assert result.baseline.latency_s + result.treatment.latency_s > result.flight_seconds


def test_timeout_accounting_consistent_between_queue_and_result(
    tiny_engine, steerable_job
):
    job, flip = steerable_job
    timeout_s = 0.5
    tight = FlightingService(
        tiny_engine,
        FlightingConfig(
            queue_size=2,
            per_job_timeout_s=timeout_s,
            total_budget_s=timeout_s * 3,
            filtered_prob=0.0,
            failure_prob=0.0,
        ),
    )
    results = tight.run_queue(
        [FlightRequest(job, flip, est_cost_delta=-0.1 * i) for i in range(8)], day=0
    )
    flown = [r for r in results if r.status is FlightStatus.TIMEOUT]
    assert flown  # with a 0.5 s limit every served flight times out
    assert all(r.flight_seconds <= 2 * timeout_s for r in flown)
    # budget admission consumed the capped numbers: the 3-timeout budget
    # admitted more than one 2-flight wave before cutting off
    assert len(flown) > 2
    assert any(r.status is FlightStatus.NOT_RUN for r in results)


def test_standalone_flight_counter_is_thread_safe(tiny_engine, steerable_job):
    import threading

    job, flip = steerable_job
    service = FlightingService(
        tiny_engine, FlightingConfig(filtered_prob=1.0, failure_prob=0.0)
    )
    threads = 8
    flights_each = 25
    barrier = threading.Barrier(threads)

    def hammer() -> None:
        barrier.wait()
        for _ in range(flights_each):
            service.flight(FlightRequest(job, flip), day=0)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    # no lost increments: every standalone flight claimed a distinct id
    assert service._flight_counter == threads * flights_each
